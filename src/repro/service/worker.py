"""Per-shard workers: one owned structure, one bounded op queue.

A :class:`Worker` owns exactly one structure behind a small adapter
interface and drains its queue in micro-batches.  Within a batch,
consecutive requests of the same kind form a *segment* that goes down
the structure's batch path (``insert_batch``, ``probe_batch``,
``multi_get``, ``contains_batch`` — i.e. one compiled
``engine.hash_batch`` pass per segment), so per-key ordering is
preserved while the hashing cost is amortized exactly like PR 1's
batch paths.

Adapters also carry the degraded-mode machinery: ``tripped`` reports
whether the structure's CollisionMonitor forced a full-key fallback,
``fall_back()`` rebuilds the structure under full-key hashing without
losing a single stored entry, ``restore_partial_key()`` undoes the
fallback for a circuit-breaker probe, and ``force_trip()`` injects a
pathological displacement burst through the real monitor (the same
trigger the fuzz harness uses) for drills and tests.

Since PR 5 a worker is also *crash-safe*: every acknowledged mutation
is recorded in a per-shard :class:`~repro.service.journal.ShardJournal`
at ack time, tickets popped from the queue live in an inflight registry
until answered, and ``restart()`` rebuilds the structure from the
journal and hands the unanswered tickets back to the supervisor for
front-of-queue requeue.  The fault plane's injection points (crash,
stall, drop) live in ``pump()``; a batch is served segment-by-segment,
and a segment is atomic — apply, acknowledge, journal together — so a
crash can only land *between* segments, never tear one.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set

from repro.core.greedy import GreedyResult
from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import EntropyModel
from repro.engine import CollisionMonitor
from repro.faults import InjectedCrash

from repro.service.journal import ShardJournal
from repro.service.protocol import FAILED, OK, Request, Response, Ticket

BACKENDS = ("chaining", "probing", "lsm", "bloom", "cuckoo_filter")


def _full_key_model(base: str) -> EntropyModel:
    """A model whose every recommendation is full-key hashing."""
    return EntropyModel(result=GreedyResult(
        positions=[], word_size=8, entropies=[], train_collisions=[],
        train_size=0, eval_size=0,
    ), base=base)


class StructureAdapter:
    """Uniform batched facade over one ELH structure."""

    backend: str = ""
    supported: frozenset = frozenset()
    # True when the structure feeds per-insert collision signals through
    # a HashEngine + CollisionMonitor (tables do; filters and the LSM
    # trip through coarser, adapter-level paths).
    monitorable: bool = False

    def __init__(self) -> None:
        self._degraded = False

    # Batch entry points; ``keys`` is never empty.
    def get_batch(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        raise NotImplementedError

    def put_batch(
        self, keys: Sequence[bytes], values: Sequence[bytes]
    ) -> Optional[List[bool]]:
        """Store key/value pairs; a list of per-key acks, or None for all-ok."""
        raise NotImplementedError

    def delete_batch(self, keys: Sequence[bytes]) -> List[Optional[bool]]:
        raise NotImplementedError

    def contains_batch(self, keys: Sequence[bytes]) -> List[bool]:
        raise NotImplementedError

    # Degraded-mode hooks.
    @property
    def tripped(self) -> bool:
        """Did this structure's monitor force a full-key fallback?"""
        return self._degraded

    @property
    def engine(self):
        """The structure's HashEngine, or None (LSM shards own several)."""
        return None

    def fall_back(self) -> None:
        """Rebuild under full-key hashing; every stored entry survives."""
        raise NotImplementedError

    def restore_partial_key(self) -> None:
        """Undo a fallback: rebuild under the pristine partial-key
        hasher with a reset monitor (the breaker's half-open probe)."""
        raise NotImplementedError

    def force_trip(self) -> None:
        """Drive the real CollisionMonitor over its budget (drills)."""
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        return {"backend": self.backend, "fell_back": self.tripped}

    def __len__(self) -> int:
        raise NotImplementedError


class TableAdapter(StructureAdapter):
    """Chaining/probing hash tables: the full get/put/delete/contains set."""

    supported = frozenset({"get", "put", "delete", "contains"})

    def __init__(self, table, backend: str, monitorable: bool = False):
        super().__init__()
        self.table = table
        self.backend = backend
        # Only the EntropyAware tables feed per-insert displacement
        # signals to the engine's monitor; plain hasher-built tables
        # have no record_insert call sites, so corruption must trip
        # them through the service-level path instead.
        self.monitorable = monitorable
        # Pre-fallback hasher, kept so a breaker probe can restore the
        # learned partial-key configuration after a full-key quarantine.
        self._pristine_hasher = table.engine.hasher

    @property
    def tripped(self) -> bool:
        return self._degraded or self.table.engine.fell_back

    @property
    def engine(self):
        return self.table.engine

    def get_batch(self, keys):
        return self.table.probe_batch(list(keys))

    def put_batch(self, keys, values):
        self.table.insert_batch(list(keys), list(values))
        return None

    def delete_batch(self, keys):
        return [self.table.delete(k) for k in keys]

    def contains_batch(self, keys):
        # Stored values are request payload bytes, never None.
        return [v is not None for v in self.table.probe_batch(list(keys))]

    def fall_back(self):
        if self._degraded:
            return
        engine = self.table.engine
        if not engine.fell_back:
            engine.fall_back_to_full_key()
        # Re-place every entry under the (now full-key) engine hasher.
        self.table.rebuild_with_hasher(engine.hasher)
        self._degraded = True

    def force_trip(self):
        engine = self.table.engine
        if engine.hasher.partial_key.is_full_key:
            self.fall_back()
            return
        if engine.monitor is None:
            engine.monitor = CollisionMonitor(
                entropy=0.0, num_slots=4, min_inserts=1
            )
        engine.monitor.min_inserts = 1
        # A displacement burst no entropy budget survives: the monitor
        # votes FALL_BACK and the engine swaps itself to full-key.
        engine.record_insert(1e9, expected=0.0, n=4096)
        self.table.rebuild_with_hasher(engine.hasher)
        self._degraded = True

    def restore_partial_key(self):
        if not self.tripped:
            return
        engine = self.table.engine
        engine.rearm(self._pristine_hasher)
        # Re-place every entry under the restored partial-key hasher; if
        # the data is genuinely low-entropy the monitor re-trips during
        # this very rebuild and the probe fails on the next check.
        self.table.rebuild_with_hasher(engine.hasher)
        self._degraded = False

    def stats(self):
        out = super().stats()
        out["size"] = len(self.table)
        out["engine"] = {
            "keys_hashed": self.table.engine.counters.keys_hashed,
            "batches": self.table.engine.counters.batches,
        }
        return out

    def __len__(self):
        return len(self.table)


class FilterAdapter(StructureAdapter):
    """Approximate-membership shards: put=add, contains; no get.

    Keeps the acked key list so a full-key fallback can rebuild the
    filter without losing a member (filters cannot rehash in place).
    """

    def __init__(self, filter_obj, backend: str, capacity: int):
        super().__init__()
        self.filter = filter_obj
        self.backend = backend
        self.capacity = capacity
        self.supported = frozenset(
            {"put", "contains", "delete"} if backend == "cuckoo_filter"
            else {"put", "contains"}
        )
        self._members: List[bytes] = []
        self._pristine_hasher = filter_obj.engine.hasher

    @property
    def tripped(self) -> bool:
        return self._degraded or self.filter.engine.fell_back

    @property
    def engine(self):
        return self.filter.engine

    def get_batch(self, keys):  # pragma: no cover - guarded by `supported`
        raise NotImplementedError("filters store membership, not values")

    def put_batch(self, keys, values):
        keys = list(keys)
        if self.backend == "cuckoo_filter":
            acks = list(self.filter.add_batch(keys))
            self._members.extend(k for k, ok in zip(keys, acks) if ok)
            return acks
        self.filter.add_batch(keys)
        self._members.extend(keys)
        return None

    def delete_batch(self, keys):
        results = []
        for key in keys:
            removed = bool(self.filter.remove(key))
            if removed:
                self._members.remove(key)
            results.append(removed)
        return results

    def contains_batch(self, keys):
        return [bool(x) for x in self.filter.contains_batch(list(keys))]

    def _rebuild(self, hasher: EntropyLearnedHasher) -> None:
        from repro.filters.bloom import BloomFilter
        from repro.filters.cuckoo import CuckooFilter

        old = self.filter
        if self.backend == "cuckoo_filter":
            self.filter = CuckooFilter(
                hasher, self.capacity,
                fingerprint_bits=old.fingerprint_bits,
            )
        else:
            self.filter = BloomFilter(
                hasher, num_bits=old.num_bits, num_hashes=old.num_hashes
            )
        if self._members:
            self.filter.add_batch(list(self._members))

    def fall_back(self):
        if self._degraded:
            return
        engine = self.filter.engine
        if not engine.fell_back:
            engine.fall_back_to_full_key()
        self._rebuild(engine.hasher)
        self._degraded = True

    def force_trip(self):
        self.fall_back()

    def restore_partial_key(self):
        if not self.tripped:
            return
        engine = self.filter.engine
        engine.rearm(self._pristine_hasher)
        self._rebuild(engine.hasher)
        self._degraded = False

    def stats(self):
        out = super().stats()
        out["size"] = len(self._members)
        return out

    def __len__(self):
        return len(self._members)


class LsmAdapter(StructureAdapter):
    """LSM store shard: get/put/delete/contains over runs with filters."""

    backend = "lsm"
    supported = frozenset({"get", "put", "delete", "contains"})

    def __init__(self, store):
        super().__init__()
        self.store = store

    def get_batch(self, keys):
        return self.store.multi_get(list(keys))

    def put_batch(self, keys, values):
        for key, value in zip(keys, values):
            self.store.put(key, value)
        return None

    def delete_batch(self, keys):
        # LSM deletes write tombstones; they don't report prior presence.
        for key in keys:
            self.store.delete(key)
        return [None] * len(keys)

    def contains_batch(self, keys):
        missing = object()
        got = self.store.multi_get(list(keys), default=missing)
        return [value is not missing for value in got]

    def fall_back(self):
        if self._degraded:
            return
        from repro.kvstore.sstable import SSTable

        self.store.flush()
        empty = _full_key_model("xxh3")
        # Rebuild every run's filter under full-key hashing; entries are
        # carried over verbatim, so no acknowledged write is lost.
        self.store.runs = [
            SSTable(run.entries(), model=empty) for run in self.store.runs
        ]
        self._degraded = True

    def force_trip(self):
        self.fall_back()

    def restore_partial_key(self):
        if not self._degraded:
            return
        from repro.kvstore.sstable import SSTable

        self.store.flush()
        # model=None retrains a per-run partial-key model, the same path
        # a freshly flushed run takes.
        self.store.runs = [
            SSTable(run.entries(), model=None) for run in self.store.runs
        ]
        self._degraded = False

    def stats(self):
        out = super().stats()
        out["size"] = self.store.total_entries()
        out["runs"] = self.store.num_runs
        return out

    def __len__(self):
        return self.store.total_entries()


def make_adapter(
    backend: str,
    capacity: int,
    model=None,
    hasher: Optional[EntropyLearnedHasher] = None,
    seed: int = 0,
) -> StructureAdapter:
    """Build one shard's structure from a model (production) or a raw
    hasher (tests/fuzzing).  Exactly one of ``model``/``hasher``."""
    if (model is None) == (hasher is None):
        raise ValueError("pass exactly one of model= or hasher=")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")

    capacity = max(capacity, 4)
    if backend == "chaining":
        from repro.tables.chaining import EntropyAwareTable, SeparateChainingTable

        table = (EntropyAwareTable(model, capacity=capacity, seed=seed)
                 if model is not None
                 else SeparateChainingTable(hasher, capacity=capacity))
        return TableAdapter(table, backend, monitorable=model is not None)
    if backend == "probing":
        from repro.tables.probing import EntropyAwareProbingTable, LinearProbingTable

        table = (EntropyAwareProbingTable(model, capacity=capacity, seed=seed)
                 if model is not None
                 else LinearProbingTable(hasher, capacity=capacity))
        return TableAdapter(table, backend, monitorable=model is not None)
    if backend == "lsm":
        from repro.kvstore.store import LSMStore

        return LsmAdapter(LSMStore(memtable_bytes=max(1024, capacity * 8)))
    if backend == "bloom":
        from repro.filters.bloom import BloomFilter

        h = hasher if hasher is not None else model.hasher_for_bloom_filter(
            capacity, seed=seed
        )
        return FilterAdapter(
            BloomFilter.for_items(h, capacity), backend, capacity
        )
    from repro.filters.cuckoo import CuckooFilter

    h = hasher if hasher is not None else model.hasher_for_bloom_filter(
        capacity, seed=seed
    )
    return FilterAdapter(CuckooFilter(h, capacity), backend, capacity)


class Worker:
    """One shard: a bounded ticket queue drained in micro-batches."""

    def __init__(
        self,
        shard_id: int,
        adapter: StructureAdapter,
        max_queue: int = 256,
        batch_size: int = 64,
        factory: Optional[Callable[[], StructureAdapter]] = None,
        journal_checkpoint: int = 4096,
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.shard_id = shard_id
        self.adapter = adapter
        self.factory = factory
        self.max_queue = max_queue
        self.batch_size = batch_size
        self.queue: Deque[Ticket] = deque()
        self._queued_ids: Set[int] = set()
        # Tickets popped from the queue but not yet answered; the
        # supervisor requeues whatever a crash or a drop leaves behind.
        self.inflight: Dict[int, Ticket] = {}
        self.journal = ShardJournal(
            checkpoint_every=journal_checkpoint,
            multiset=(adapter.backend == "cuckoo_filter"),
        )
        self.fault_plane = None
        self.crashed = False
        self.enqueued = 0
        self.processed = 0
        self.batches = 0
        self.rejected = 0
        self.peak_queue_depth = 0
        self.restarts = 0
        self.stalls = 0
        self.drops = 0
        self.requeued = 0
        self.cancelled = 0
        self.op_counts: Dict[str, int] = {}

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def tripped(self) -> bool:
        return self.adapter.tripped

    @property
    def inflight_unanswered(self) -> int:
        return sum(1 for t in self.inflight.values() if t.response is None)

    def try_enqueue(self, ticket: Ticket) -> bool:
        """Admit a ticket, or refuse when the queue is at capacity."""
        if len(self.queue) >= self.max_queue:
            self.rejected += 1
            return False
        self.queue.append(ticket)
        self._queued_ids.add(ticket.request_id)
        self.enqueued += 1
        self.peak_queue_depth = max(self.peak_queue_depth, len(self.queue))
        return True

    def requeue_front(self, tickets: Sequence[Ticket]) -> None:
        """Merge recovered tickets back into the queue in admission order.

        Crash/drop victims were popped from the queue front, so they
        predate everything still queued — but a queue_loss ticket never
        entered the queue at all, and requests admitted *after* it may
        already be waiting.  A blind prepend would serve the lost ticket
        ahead of an earlier write to the same key and invert write
        order; merging on request_id (queues are FIFO in a globally
        monotonic id, hence sorted) restores true admission order.
        ``max_queue`` is deliberately bypassed: these tickets were
        already admitted once.
        """
        tickets = list(tickets)
        if not tickets:
            return
        merged = sorted(
            tickets + list(self.queue), key=lambda t: t.request_id
        )
        self.queue.clear()
        self.queue.extend(merged)
        for ticket in tickets:
            self._queued_ids.add(ticket.request_id)
        self.requeued += len(tickets)
        self.peak_queue_depth = max(self.peak_queue_depth, len(self.queue))

    def cancel(self, ticket: Ticket) -> None:
        """Forget a ticket the client gave up on (deadline exceeded)."""
        self.inflight.pop(ticket.request_id, None)
        if ticket.request_id in self._queued_ids:
            try:
                self.queue.remove(ticket)
            except ValueError:  # pragma: no cover - ids track the deque
                pass
            self._queued_ids.discard(ticket.request_id)
        self.cancelled += 1

    def reconcile(self) -> List[Ticket]:
        """Collect tickets that left the queue but never got an answer.

        Only meaningful *between* pumps: anything still unanswered in
        the inflight registry was abandoned by a crash, an injected
        drop, or a lost queue slot.  Returned in ``request_id`` (i.e.
        admission) order, ready for :meth:`requeue_front`.
        """
        if not self.inflight:
            return []
        lost = sorted(
            (t for t in self.inflight.values() if t.response is None),
            key=lambda t: t.request_id,
        )
        self.inflight.clear()
        return lost

    def restart(self) -> List[Ticket]:
        """Rebuild the structure from the journal after a crash/stall.

        Returns the unanswered inflight tickets (admission order) for
        the supervisor to requeue.  The queue itself is untouched — its
        tickets were never popped, so they are neither lost nor stale.
        """
        if self.factory is None:
            raise RuntimeError(
                f"worker {self.shard_id} crashed but has no adapter factory"
            )
        self.adapter = self.factory()
        self.journal.replay(self.adapter)
        self.crashed = False
        self.restarts += 1
        return self.reconcile()

    def pump(self) -> int:
        """Drain one micro-batch; returns the number of ops served."""
        if self.crashed or not self.queue:
            return 0
        plane = self.fault_plane
        if plane is not None and plane.should_fire("stall", self.shard_id):
            # Stall: return without touching the queue.  The supervisor
            # notices the frozen processed counter and restarts us.
            self.stalls += 1
            return 0
        batch: List[Ticket] = []
        while self.queue and len(batch) < self.batch_size:
            ticket = self.queue.popleft()
            self._queued_ids.discard(ticket.request_id)
            if ticket.response is not None:
                continue  # answered elsewhere (e.g. deadline-failed)
            self.inflight[ticket.request_id] = ticket
            batch.append(ticket)
        if not batch:
            return 0
        self.batches += 1
        if plane is not None and plane.should_fire("drop", self.shard_id):
            # Drop: the batch is popped but never served or answered.
            # Its tickets sit unanswered in the inflight registry until
            # the supervisor's reconciliation pass requeues them.
            self.drops += 1
            return 0
        # Consecutive same-op segments keep per-key FIFO order while
        # sharing one engine.hash_batch pass each.
        segments: List[List[Ticket]] = []
        start = 0
        while start < len(batch):
            end = start + 1
            op = batch[start].request.op
            while end < len(batch) and batch[end].request.op == op:
                end += 1
            segments.append(batch[start:end])
            start = end
        crash_at = None
        if plane is not None and plane.should_fire("crash", self.shard_id):
            crash_at = len(segments) // 2
        served = 0
        try:
            for index, segment in enumerate(segments):
                if crash_at is not None and index == crash_at:
                    self.crashed = True
                    raise InjectedCrash(
                        f"worker {self.shard_id} crashed mid-batch "
                        f"(segment {index}/{len(segments)})"
                    )
                self._serve_segment(segment[0].request.op, segment)
                for ticket in segment:
                    self.inflight.pop(ticket.request_id, None)
                served += len(segment)
        finally:
            # Segments served before a crash were applied, acked, and
            # journaled atomically; they count as processed.
            self.processed += served
        return served

    def drain(self) -> int:
        served = 0
        while self.queue:
            step = self.pump()
            served += step
            if step == 0:
                break  # crashed/stalled/dropped: the supervisor steps in
        return served

    def _serve_segment(self, op: str, tickets: List[Ticket]) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + len(tickets)
        keys = [t.request.key for t in tickets]
        if op not in self.adapter.supported:
            for ticket in tickets:
                ticket.response = Response(
                    FAILED, shard=self.shard_id,
                    error=f"op {op!r} unsupported by backend "
                          f"{self.adapter.backend!r}",
                )
            return
        if op == "get":
            for ticket, value in zip(tickets, self.adapter.get_batch(keys)):
                ticket.response = Response(
                    OK, value=value, found=value is not None,
                    shard=self.shard_id,
                )
        elif op == "put":
            values = [t.request.value for t in tickets]
            acks = self.adapter.put_batch(keys, values)
            for i, ticket in enumerate(tickets):
                if acks is not None and not acks[i]:
                    ticket.response = Response(
                        FAILED, shard=self.shard_id, error="structure full"
                    )
                else:
                    # Journal at ack time: the entry is in the journal
                    # exactly when the client can observe an OK.
                    self.journal.record_put(keys[i], values[i] or b"")
                    ticket.response = Response(OK, shard=self.shard_id)
        elif op == "delete":
            for ticket, removed in zip(
                tickets, self.adapter.delete_batch(keys)
            ):
                if removed is not False:
                    # True (removed) or None (tombstone): the journal
                    # must mirror it.  False removed nothing.
                    self.journal.record_delete(ticket.request.key)
                ticket.response = Response(
                    OK, found=removed, shard=self.shard_id
                )
        else:  # contains
            for ticket, present in zip(
                tickets, self.adapter.contains_batch(keys)
            ):
                ticket.response = Response(
                    OK, found=present, shard=self.shard_id
                )

    def fall_back(self) -> None:
        self.adapter.fall_back()

    def restore_partial_key(self) -> None:
        self.adapter.restore_partial_key()

    def force_trip(self) -> None:
        self.adapter.force_trip()

    def stats(self) -> Dict[str, object]:
        return {
            "shard": self.shard_id,
            "backend": self.adapter.backend,
            "enqueued": self.enqueued,
            "processed": self.processed,
            "batches": self.batches,
            "mean_batch_size": (
                self.processed / self.batches if self.batches else 0.0
            ),
            "rejected": self.rejected,
            "queue_depth": self.queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "op_counts": dict(self.op_counts),
            "crashed": self.crashed,
            "restarts": self.restarts,
            "stalls": self.stalls,
            "drops": self.drops,
            "requeued": self.requeued,
            "cancelled": self.cancelled,
            "journal": self.journal.stats(),
            "structure": self.adapter.stats(),
        }


__all__ = [
    "BACKENDS",
    "StructureAdapter",
    "TableAdapter",
    "FilterAdapter",
    "LsmAdapter",
    "make_adapter",
    "Worker",
]
