"""Per-shard workers: one owned structure, one bounded op queue.

A :class:`Worker` owns exactly one structure behind a small adapter
interface and drains its queue in micro-batches.  Within a batch,
consecutive requests of the same kind form a *segment* that goes down
the structure's batch path (``insert_batch``, ``probe_batch``,
``multi_get``, ``contains_batch`` — i.e. one compiled
``engine.hash_batch`` pass per segment), so per-key ordering is
preserved while the hashing cost is amortized exactly like PR 1's
batch paths.

Adapters also carry the degraded-mode machinery: ``tripped`` reports
whether the structure's CollisionMonitor forced a full-key fallback,
``fall_back()`` rebuilds the structure under full-key hashing without
losing a single stored entry, and ``force_trip()`` injects a
pathological displacement burst through the real monitor (the same
trigger the fuzz harness uses) for drills and tests.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.core.greedy import GreedyResult
from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import EntropyModel
from repro.engine import CollisionMonitor

from repro.service.protocol import FAILED, OK, Request, Response, Ticket

BACKENDS = ("chaining", "probing", "lsm", "bloom", "cuckoo_filter")


def _full_key_model(base: str) -> EntropyModel:
    """A model whose every recommendation is full-key hashing."""
    return EntropyModel(result=GreedyResult(
        positions=[], word_size=8, entropies=[], train_collisions=[],
        train_size=0, eval_size=0,
    ), base=base)


class StructureAdapter:
    """Uniform batched facade over one ELH structure."""

    backend: str = ""
    supported: frozenset = frozenset()

    def __init__(self) -> None:
        self._degraded = False

    # Batch entry points; ``keys`` is never empty.
    def get_batch(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        raise NotImplementedError

    def put_batch(
        self, keys: Sequence[bytes], values: Sequence[bytes]
    ) -> Optional[List[bool]]:
        """Store key/value pairs; a list of per-key acks, or None for all-ok."""
        raise NotImplementedError

    def delete_batch(self, keys: Sequence[bytes]) -> List[Optional[bool]]:
        raise NotImplementedError

    def contains_batch(self, keys: Sequence[bytes]) -> List[bool]:
        raise NotImplementedError

    # Degraded-mode hooks.
    @property
    def tripped(self) -> bool:
        """Did this structure's monitor force a full-key fallback?"""
        return self._degraded

    def fall_back(self) -> None:
        """Rebuild under full-key hashing; every stored entry survives."""
        raise NotImplementedError

    def force_trip(self) -> None:
        """Drive the real CollisionMonitor over its budget (drills)."""
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        return {"backend": self.backend, "fell_back": self.tripped}

    def __len__(self) -> int:
        raise NotImplementedError


class TableAdapter(StructureAdapter):
    """Chaining/probing hash tables: the full get/put/delete/contains set."""

    supported = frozenset({"get", "put", "delete", "contains"})

    def __init__(self, table, backend: str):
        super().__init__()
        self.table = table
        self.backend = backend

    @property
    def tripped(self) -> bool:
        return self._degraded or self.table.engine.fell_back

    def get_batch(self, keys):
        return self.table.probe_batch(list(keys))

    def put_batch(self, keys, values):
        self.table.insert_batch(list(keys), list(values))
        return None

    def delete_batch(self, keys):
        return [self.table.delete(k) for k in keys]

    def contains_batch(self, keys):
        # Stored values are request payload bytes, never None.
        return [v is not None for v in self.table.probe_batch(list(keys))]

    def fall_back(self):
        if self._degraded:
            return
        engine = self.table.engine
        if not engine.fell_back:
            engine.fall_back_to_full_key()
        # Re-place every entry under the (now full-key) engine hasher.
        self.table.rebuild_with_hasher(engine.hasher)
        self._degraded = True

    def force_trip(self):
        engine = self.table.engine
        if engine.hasher.partial_key.is_full_key:
            self.fall_back()
            return
        if engine.monitor is None:
            engine.monitor = CollisionMonitor(
                entropy=0.0, num_slots=4, min_inserts=1
            )
        engine.monitor.min_inserts = 1
        # A displacement burst no entropy budget survives: the monitor
        # votes FALL_BACK and the engine swaps itself to full-key.
        engine.record_insert(1e9, expected=0.0, n=4096)
        self.table.rebuild_with_hasher(engine.hasher)
        self._degraded = True

    def stats(self):
        out = super().stats()
        out["size"] = len(self.table)
        out["engine"] = {
            "keys_hashed": self.table.engine.counters.keys_hashed,
            "batches": self.table.engine.counters.batches,
        }
        return out

    def __len__(self):
        return len(self.table)


class FilterAdapter(StructureAdapter):
    """Approximate-membership shards: put=add, contains; no get.

    Keeps the acked key list so a full-key fallback can rebuild the
    filter without losing a member (filters cannot rehash in place).
    """

    def __init__(self, filter_obj, backend: str, capacity: int):
        super().__init__()
        self.filter = filter_obj
        self.backend = backend
        self.capacity = capacity
        self.supported = frozenset(
            {"put", "contains", "delete"} if backend == "cuckoo_filter"
            else {"put", "contains"}
        )
        self._members: List[bytes] = []

    @property
    def tripped(self) -> bool:
        return self._degraded or self.filter.engine.fell_back

    def get_batch(self, keys):  # pragma: no cover - guarded by `supported`
        raise NotImplementedError("filters store membership, not values")

    def put_batch(self, keys, values):
        keys = list(keys)
        if self.backend == "cuckoo_filter":
            acks = list(self.filter.add_batch(keys))
            self._members.extend(k for k, ok in zip(keys, acks) if ok)
            return acks
        self.filter.add_batch(keys)
        self._members.extend(keys)
        return None

    def delete_batch(self, keys):
        results = []
        for key in keys:
            removed = bool(self.filter.remove(key))
            if removed:
                self._members.remove(key)
            results.append(removed)
        return results

    def contains_batch(self, keys):
        return [bool(x) for x in self.filter.contains_batch(list(keys))]

    def _rebuild(self, hasher: EntropyLearnedHasher) -> None:
        from repro.filters.bloom import BloomFilter
        from repro.filters.cuckoo import CuckooFilter

        old = self.filter
        if self.backend == "cuckoo_filter":
            self.filter = CuckooFilter(
                hasher, self.capacity,
                fingerprint_bits=old.fingerprint_bits,
            )
        else:
            self.filter = BloomFilter(
                hasher, num_bits=old.num_bits, num_hashes=old.num_hashes
            )
        if self._members:
            self.filter.add_batch(list(self._members))

    def fall_back(self):
        if self._degraded:
            return
        engine = self.filter.engine
        if not engine.fell_back:
            engine.fall_back_to_full_key()
        self._rebuild(engine.hasher)
        self._degraded = True

    def force_trip(self):
        self.fall_back()

    def stats(self):
        out = super().stats()
        out["size"] = len(self._members)
        return out

    def __len__(self):
        return len(self._members)


class LsmAdapter(StructureAdapter):
    """LSM store shard: get/put/delete/contains over runs with filters."""

    backend = "lsm"
    supported = frozenset({"get", "put", "delete", "contains"})

    def __init__(self, store):
        super().__init__()
        self.store = store

    def get_batch(self, keys):
        return self.store.multi_get(list(keys))

    def put_batch(self, keys, values):
        for key, value in zip(keys, values):
            self.store.put(key, value)
        return None

    def delete_batch(self, keys):
        # LSM deletes write tombstones; they don't report prior presence.
        for key in keys:
            self.store.delete(key)
        return [None] * len(keys)

    def contains_batch(self, keys):
        missing = object()
        got = self.store.multi_get(list(keys), default=missing)
        return [value is not missing for value in got]

    def fall_back(self):
        if self._degraded:
            return
        from repro.kvstore.sstable import SSTable

        self.store.flush()
        empty = _full_key_model("xxh3")
        # Rebuild every run's filter under full-key hashing; entries are
        # carried over verbatim, so no acknowledged write is lost.
        self.store.runs = [
            SSTable(run.entries(), model=empty) for run in self.store.runs
        ]
        self._degraded = True

    def force_trip(self):
        self.fall_back()

    def stats(self):
        out = super().stats()
        out["size"] = self.store.total_entries()
        out["runs"] = self.store.num_runs
        return out

    def __len__(self):
        return self.store.total_entries()


def make_adapter(
    backend: str,
    capacity: int,
    model=None,
    hasher: Optional[EntropyLearnedHasher] = None,
    seed: int = 0,
) -> StructureAdapter:
    """Build one shard's structure from a model (production) or a raw
    hasher (tests/fuzzing).  Exactly one of ``model``/``hasher``."""
    if (model is None) == (hasher is None):
        raise ValueError("pass exactly one of model= or hasher=")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")

    capacity = max(capacity, 4)
    if backend == "chaining":
        from repro.tables.chaining import EntropyAwareTable, SeparateChainingTable

        table = (EntropyAwareTable(model, capacity=capacity, seed=seed)
                 if model is not None
                 else SeparateChainingTable(hasher, capacity=capacity))
        return TableAdapter(table, backend)
    if backend == "probing":
        from repro.tables.probing import EntropyAwareProbingTable, LinearProbingTable

        table = (EntropyAwareProbingTable(model, capacity=capacity, seed=seed)
                 if model is not None
                 else LinearProbingTable(hasher, capacity=capacity))
        return TableAdapter(table, backend)
    if backend == "lsm":
        from repro.kvstore.store import LSMStore

        return LsmAdapter(LSMStore(memtable_bytes=max(1024, capacity * 8)))
    if backend == "bloom":
        from repro.filters.bloom import BloomFilter

        h = hasher if hasher is not None else model.hasher_for_bloom_filter(
            capacity, seed=seed
        )
        return FilterAdapter(
            BloomFilter.for_items(h, capacity), backend, capacity
        )
    from repro.filters.cuckoo import CuckooFilter

    h = hasher if hasher is not None else model.hasher_for_bloom_filter(
        capacity, seed=seed
    )
    return FilterAdapter(CuckooFilter(h, capacity), backend, capacity)


class Worker:
    """One shard: a bounded ticket queue drained in micro-batches."""

    def __init__(
        self,
        shard_id: int,
        adapter: StructureAdapter,
        max_queue: int = 256,
        batch_size: int = 64,
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.shard_id = shard_id
        self.adapter = adapter
        self.max_queue = max_queue
        self.batch_size = batch_size
        self.queue: Deque[Ticket] = deque()
        self.enqueued = 0
        self.processed = 0
        self.batches = 0
        self.rejected = 0
        self.peak_queue_depth = 0
        self.op_counts: Dict[str, int] = {}

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def tripped(self) -> bool:
        return self.adapter.tripped

    def try_enqueue(self, ticket: Ticket) -> bool:
        """Admit a ticket, or refuse when the queue is at capacity."""
        if len(self.queue) >= self.max_queue:
            self.rejected += 1
            return False
        self.queue.append(ticket)
        self.enqueued += 1
        self.peak_queue_depth = max(self.peak_queue_depth, len(self.queue))
        return True

    def pump(self) -> int:
        """Drain one micro-batch; returns the number of ops served."""
        if not self.queue:
            return 0
        batch: List[Ticket] = []
        while self.queue and len(batch) < self.batch_size:
            batch.append(self.queue.popleft())
        self.batches += 1
        # Consecutive same-op segments keep per-key FIFO order while
        # sharing one engine.hash_batch pass each.
        start = 0
        while start < len(batch):
            end = start + 1
            op = batch[start].request.op
            while end < len(batch) and batch[end].request.op == op:
                end += 1
            self._serve_segment(op, batch[start:end])
            start = end
        self.processed += len(batch)
        return len(batch)

    def drain(self) -> int:
        served = 0
        while self.queue:
            served += self.pump()
        return served

    def _serve_segment(self, op: str, tickets: List[Ticket]) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + len(tickets)
        keys = [t.request.key for t in tickets]
        if op not in self.adapter.supported:
            for ticket in tickets:
                ticket.response = Response(
                    FAILED, shard=self.shard_id,
                    error=f"op {op!r} unsupported by backend "
                          f"{self.adapter.backend!r}",
                )
            return
        if op == "get":
            for ticket, value in zip(tickets, self.adapter.get_batch(keys)):
                ticket.response = Response(
                    OK, value=value, found=value is not None,
                    shard=self.shard_id,
                )
        elif op == "put":
            values = [t.request.value for t in tickets]
            acks = self.adapter.put_batch(keys, values)
            for i, ticket in enumerate(tickets):
                if acks is not None and not acks[i]:
                    ticket.response = Response(
                        FAILED, shard=self.shard_id, error="structure full"
                    )
                else:
                    ticket.response = Response(OK, shard=self.shard_id)
        elif op == "delete":
            for ticket, removed in zip(
                tickets, self.adapter.delete_batch(keys)
            ):
                ticket.response = Response(
                    OK, found=removed, shard=self.shard_id
                )
        else:  # contains
            for ticket, present in zip(
                tickets, self.adapter.contains_batch(keys)
            ):
                ticket.response = Response(
                    OK, found=present, shard=self.shard_id
                )

    def fall_back(self) -> None:
        self.adapter.fall_back()

    def force_trip(self) -> None:
        self.adapter.force_trip()

    def stats(self) -> Dict[str, object]:
        return {
            "shard": self.shard_id,
            "backend": self.adapter.backend,
            "enqueued": self.enqueued,
            "processed": self.processed,
            "batches": self.batches,
            "mean_batch_size": (
                self.processed / self.batches if self.batches else 0.0
            ),
            "rejected": self.rejected,
            "queue_depth": self.queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "op_counts": dict(self.op_counts),
            "structure": self.adapter.stats(),
        }


__all__ = [
    "BACKENDS",
    "StructureAdapter",
    "TableAdapter",
    "FilterAdapter",
    "LsmAdapter",
    "make_adapter",
    "Worker",
]
