"""Per-shard workers: one owned structure, one bounded op queue.

A :class:`Worker` is the *shell* around one shard: the bounded ticket
queue, the inflight registry, the ack-time journal, the fault-plane
injection points, and the response/journal absorption logic.  The
structure itself lives behind an
:class:`~repro.service.backends.ExecutionBackend` — embedded in the
parent (:class:`~repro.service.backends.InlineBackend`, the original
cooperative pump and the differential fuzzer's reference semantics) or
in a forked child process
(:class:`~repro.service.backends.ProcessBackend`).

A pump is two phases.  ``dispatch()`` pops one micro-batch, splits it
into consecutive same-op *segments* (one compiled ``engine.hash_batch``
pass each, so per-key ordering is preserved while hashing cost is
amortized exactly like PR 1's batch paths), applies the fault plane's
worker-level directives (stall, drop, crash, sigkill), and hands the
segments to the backend.  ``collect()`` absorbs whatever the backend
produced: responses are written onto tickets, acknowledged mutations
are journaled, and inflight entries are retired — all parent-side, for
both backends, which is what makes a child's state disposable.  Inline
execution serves synchronously, so ``dispatch`` already absorbs and
``collect`` is a no-op; ``pump()`` runs both phases back-to-back for
callers that don't need the cross-shard parallel window.

Since PR 5 a worker is crash-safe: every acknowledged mutation is
recorded in a per-shard :class:`~repro.service.journal.ShardJournal` at
ack time, tickets popped from the queue live in an inflight registry
until answered, and ``restart()`` rebuilds the structure from the
journal and hands the unanswered tickets back to the supervisor for
front-of-queue requeue.  A segment is atomic — apply, acknowledge,
journal together — so a crash can only land *between* segments, never
tear one; with process execution the same holds because only fully
reported segments are absorbed.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set

from repro.service.adapters import (  # noqa: F401  (re-exported API)
    BACKENDS,
    AdapterSpec,
    FilterAdapter,
    LsmAdapter,
    StructureAdapter,
    TableAdapter,
    _full_key_model,
    make_adapter,
)
from repro.service.backends import ExecutionBackend, InlineBackend
from repro.service.journal import Entry, ShardJournal
from repro.service.protocol import (
    FAILED,
    OK,
    WRONG_GENERATION,
    Response,
    Ticket,
)


class Worker:
    """One shard: a bounded ticket queue drained in micro-batches."""

    def __init__(
        self,
        shard_id: int,
        adapter: Optional[StructureAdapter] = None,
        max_queue: int = 256,
        batch_size: int = 64,
        factory: Optional[Callable[[], StructureAdapter]] = None,
        journal_checkpoint: int = 4096,
        execution: Optional[ExecutionBackend] = None,
        journal: Optional[ShardJournal] = None,
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if (adapter is None) == (execution is None):
            raise ValueError("pass exactly one of adapter= or execution=")
        if execution is None:
            execution = InlineBackend(adapter)
        self.shard_id = shard_id
        self.execution = execution
        self.factory = factory
        self.max_queue = max_queue
        self.batch_size = batch_size
        self.queue: Deque[Ticket] = deque()
        self._queued_ids: Set[int] = set()
        # Tickets popped from the queue but not yet answered; the
        # supervisor requeues whatever a crash or a drop leaves behind.
        self.inflight: Dict[int, Ticket] = {}
        # The journal must exist before execution.start(): a process
        # backend snapshots it at spawn so the child replays it — which
        # is how a live split seeds a brand-new shard with the donor's
        # migrated entries (the journal= preset).
        self.journal = journal if journal is not None else ShardJournal(
            checkpoint_every=journal_checkpoint,
            multiset=(execution.structure_backend == "cuckoo_filter"),
        )
        self.fault_plane = None
        # The owning service's router, when generation checking is on:
        # dispatch answers WRONG_GENERATION for tickets admitted under
        # an older routing generation whose key moved off this shard.
        self.router = None
        # Optional drift observer: called as tap(shard_id, keys) with
        # every acked segment's keys.  Parent-side for both backends, so
        # the drift detector sees the same stream regardless of where
        # the structure lives.
        self.drift_tap: Optional[Callable[[int, List[bytes]], None]] = None
        self.crashed = False
        self.enqueued = 0
        self.processed = 0
        self.batches = 0
        self.rejected = 0
        self.peak_queue_depth = 0
        self.restarts = 0
        self.stalls = 0
        self.drops = 0
        self.requeued = 0
        self.cancelled = 0
        self.wrong_generation = 0
        self.op_counts: Dict[str, int] = {}
        self.execution.start(self)

    @property
    def adapter(self) -> Optional[StructureAdapter]:
        """The in-parent structure adapter; None under process
        execution (the structure lives in the shard child)."""
        return self.execution.adapter

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def tripped(self) -> bool:
        return self.execution.tripped

    @property
    def inflight_unanswered(self) -> int:
        return sum(1 for t in self.inflight.values() if t.response is None)

    def try_enqueue(self, ticket: Ticket) -> bool:
        """Admit a ticket, or refuse when the queue is at capacity."""
        if len(self.queue) >= self.max_queue:
            self.rejected += 1
            return False
        self.queue.append(ticket)
        self._queued_ids.add(ticket.request_id)
        self.enqueued += 1
        self.peak_queue_depth = max(self.peak_queue_depth, len(self.queue))
        return True

    def requeue_front(self, tickets: Sequence[Ticket]) -> None:
        """Merge recovered tickets back into the queue in admission order.

        Crash/drop victims were popped from the queue front, so they
        predate everything still queued — but a queue_loss ticket never
        entered the queue at all, and requests admitted *after* it may
        already be waiting.  A blind prepend would serve the lost ticket
        ahead of an earlier write to the same key and invert write
        order; merging on request_id (queues are FIFO in a globally
        monotonic id, hence sorted) restores true admission order.
        ``max_queue`` is deliberately bypassed: these tickets were
        already admitted once.
        """
        tickets = list(tickets)
        if not tickets:
            return
        merged = sorted(
            tickets + list(self.queue), key=lambda t: t.request_id
        )
        self.queue.clear()
        self.queue.extend(merged)
        for ticket in tickets:
            self._queued_ids.add(ticket.request_id)
        self.requeued += len(tickets)
        self.peak_queue_depth = max(self.peak_queue_depth, len(self.queue))

    def cancel(self, ticket: Ticket) -> None:
        """Forget a ticket the client gave up on (deadline exceeded)."""
        self.inflight.pop(ticket.request_id, None)
        if ticket.request_id in self._queued_ids:
            try:
                self.queue.remove(ticket)
            except ValueError:  # pragma: no cover - ids track the deque
                pass
            self._queued_ids.discard(ticket.request_id)
        self.cancelled += 1

    def reconcile(self) -> List[Ticket]:
        """Collect tickets that left the queue but never got an answer.

        Only meaningful *between* pumps: anything still unanswered in
        the inflight registry was abandoned by a crash, an injected
        drop, or a lost queue slot.  Returned in ``request_id`` (i.e.
        admission) order, ready for :meth:`requeue_front`.
        """
        if not self.inflight:
            return []
        lost = sorted(
            (t for t in self.inflight.values() if t.response is None),
            key=lambda t: t.request_id,
        )
        self.inflight.clear()
        return lost

    def restart(self) -> List[Ticket]:
        """Rebuild the structure from the journal after a crash/stall.

        Returns the unanswered inflight tickets (admission order) for
        the supervisor to requeue.  The queue itself is untouched — its
        tickets were never popped, so they are neither lost nor stale.
        With process execution this kills any straggler child and forks
        a fresh one, which replays the journal on its side of the fork.
        """
        self.execution.restart(self)
        self.crashed = False
        self.restarts += 1
        return self.reconcile()

    # ------------------------------------------------------------ serving

    def dispatch(self) -> int:
        """Phase one: pop a micro-batch and hand it to the backend.

        Returns the ops served synchronously (inline execution); a
        process backend returns 0 here and yields its count from
        :meth:`collect` once every shard has been dispatched.
        """
        if self.crashed or not self.queue:
            return 0
        plane = self.fault_plane
        if plane is not None and plane.should_fire("stall", self.shard_id):
            # Stall: return without touching the queue.  The supervisor
            # notices the frozen processed counter and restarts us.
            self.stalls += 1
            return 0
        batch: List[Ticket] = []
        while self.queue and len(batch) < self.batch_size:
            ticket = self.queue.popleft()
            self._queued_ids.discard(ticket.request_id)
            if ticket.response is not None:
                continue  # answered elsewhere (e.g. deadline-failed)
            if self._misrouted(ticket):
                # Safety net for a routing flip the sweep missed: the
                # ticket was admitted under an older generation and its
                # key no longer routes here.  Serving it against this
                # shard's state would read/write the wrong structure;
                # answer WRONG_GENERATION so the client resubmits.
                self.wrong_generation += 1
                ticket.response = Response(
                    WRONG_GENERATION, shard=self.shard_id,
                    generation=self.router.generation,
                )
                continue
            self.inflight[ticket.request_id] = ticket
            batch.append(ticket)
        if not batch:
            return 0
        self.batches += 1
        if plane is not None and plane.should_fire("drop", self.shard_id):
            # Drop: the batch is popped but never served or answered.
            # Its tickets sit unanswered in the inflight registry until
            # the supervisor's reconciliation pass requeues them.
            self.drops += 1
            return 0
        # Consecutive same-op segments keep per-key FIFO order while
        # sharing one engine.hash_batch pass each.
        segments: List[List[Ticket]] = []
        start = 0
        while start < len(batch):
            end = start + 1
            op = batch[start].request.op
            while end < len(batch) and batch[end].request.op == op:
                end += 1
            segments.append(batch[start:end])
            start = end
        crash_at = None
        kill = False
        if plane is not None and plane.should_fire("crash", self.shard_id):
            crash_at = len(segments) // 2
        elif plane is not None and plane.should_fire(
            "sigkill", self.shard_id
        ):
            kill = True
        return self.execution.serve(self, segments, crash_at, kill)

    def _misrouted(self, ticket: Ticket) -> bool:
        """True when a generation flip moved the ticket's key elsewhere.

        Same-generation tickets are trusted outright (the router stamped
        and placed them together), so the pure re-route only runs for
        the rare stale stragglers a flip sweep failed to move.
        """
        if self.router is None or ticket.generation == self.router.generation:
            return False
        if ticket.request.op == "stats" or not ticket.request.key:
            return False
        return self.router.table.route_one(ticket.request.key) != self.shard_id

    def apply_entries(self, entries: List[Entry]) -> int:
        """Apply migrated journal entries to the live structure.

        The migration path for a hot-key promotion: the entries were
        already appended to :attr:`journal` by the caller; this pushes
        them into the running structure (inline: direct replay; process:
        an ``apply`` command executed in the shard child) without a
        restart.  Returns the number of ops applied.
        """
        return self.execution.apply_entries(self, entries)

    def collect(self) -> int:
        """Phase two: absorb the backend's results for this pump."""
        return self.execution.collect(self)

    def pump(self) -> int:
        """Drain one micro-batch; returns the number of ops served."""
        return self.dispatch() + self.collect()

    def drain(self) -> int:
        served = 0
        while self.queue:
            step = self.pump()
            served += step
            if step == 0:
                break  # crashed/stalled/dropped: the supervisor steps in
        return served

    def _absorb_segment(self, op: str, tickets: List[Ticket], result) -> None:
        """Turn one segment's wire result into responses + journal
        entries.  This is the single ack path for both backends: an
        entry is in the journal exactly when the client can observe an
        OK, regardless of where the structure lives."""
        self.op_counts[op] = self.op_counts.get(op, 0) + len(tickets)
        if self.drift_tap is not None and op in ("put", "get", "delete",
                                                 "contains"):
            self.drift_tap(
                self.shard_id, [t.request.key for t in tickets]
            )
        kind, payload = result
        if kind == "unsupported":
            for ticket in tickets:
                ticket.response = Response(
                    FAILED, shard=self.shard_id,
                    error=f"op {op!r} unsupported by backend {payload!r}",
                )
            return
        if op == "get":
            for ticket, value in zip(tickets, payload):
                ticket.response = Response(
                    OK, value=value, found=value is not None,
                    shard=self.shard_id,
                )
        elif op == "put":
            acks = payload
            for i, ticket in enumerate(tickets):
                if acks is not None and not acks[i]:
                    ticket.response = Response(
                        FAILED, shard=self.shard_id, error="structure full"
                    )
                else:
                    # Journal at ack time: the entry is in the journal
                    # exactly when the client can observe an OK.
                    self.journal.record_put(
                        ticket.request.key, ticket.request.value or b""
                    )
                    ticket.response = Response(OK, shard=self.shard_id)
        elif op == "delete":
            for ticket, removed in zip(tickets, payload):
                if removed is not False:
                    # True (removed) or None (tombstone): the journal
                    # must mirror it.  False removed nothing.
                    self.journal.record_delete(ticket.request.key)
                ticket.response = Response(
                    OK, found=removed, shard=self.shard_id
                )
        elif op == "similar":
            # Read-only: nothing to journal.  None marks an unknown
            # query key; a known key with no neighbors answers OK with
            # an empty list.
            for ticket, neighbors in zip(tickets, payload):
                ticket.response = Response(
                    OK, found=neighbors is not None, shard=self.shard_id,
                    neighbors=list(neighbors or ()),
                )
        else:  # contains
            for ticket, present in zip(tickets, payload):
                ticket.response = Response(
                    OK, found=present, shard=self.shard_id
                )

    def fall_back(self) -> None:
        self.execution.fall_back(self)

    def restore_partial_key(self) -> None:
        self.execution.restore_partial_key(self)

    def force_trip(self) -> None:
        self.execution.force_trip(self)

    def rearm_with(self, model) -> bool:
        """Hot-swap this shard's structure to a re-learned model."""
        return self.execution.rearm(self, model)

    def close(self) -> None:
        """Release backend resources (child process/queues)."""
        self.execution.close()

    def stats(self) -> Dict[str, object]:
        out = {
            "shard": self.shard_id,
            "backend": self.execution.structure_backend,
            "enqueued": self.enqueued,
            "processed": self.processed,
            "batches": self.batches,
            "mean_batch_size": (
                self.processed / self.batches if self.batches else 0.0
            ),
            "rejected": self.rejected,
            "queue_depth": self.queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "op_counts": dict(self.op_counts),
            "crashed": self.crashed,
            "restarts": self.restarts,
            "stalls": self.stalls,
            "drops": self.drops,
            "requeued": self.requeued,
            "cancelled": self.cancelled,
            "wrong_generation": self.wrong_generation,
            "journal": self.journal.stats(),
            "structure": self.execution.structure_stats(self),
        }
        execution = self.execution.stats()
        if execution.get("execution") != "inline":
            out["execution"] = execution
        return out


__all__ = [
    "BACKENDS",
    "StructureAdapter",
    "TableAdapter",
    "FilterAdapter",
    "LsmAdapter",
    "make_adapter",
    "AdapterSpec",
    "Worker",
]
