"""Per-shard progress counters in (optionally) shared memory.

A :class:`ShardStateBlock` is one flat ``uint64`` numpy array with a
fixed number of slots per shard — heartbeat, processed/batch/segment
counters, journal-replay cursor, incarnation, trip flag, liveness.
When backed by :mod:`multiprocessing.shared_memory` the same physical
pages are visible to every shard child process, so the parent can watch
a child's heartbeat advance *while a batch is being served* without any
queue round-trip.  That is what lets the
:class:`~repro.service.backends.ProcessBackend` distinguish "child is
slow but alive" (heartbeat moving — keep waiting) from "child is wedged
or gone" (heartbeat frozen — kill and treat as a crash).

The block is an observability plane, never a source of truth: the
parent-side worker counters and the ack-time journal stay authoritative
for stats and recovery, so a sandbox without ``/dev/shm`` degrades to a
process-local buffer (``shared == False``) and only heartbeat-aware
timeout extension is lost.

Slot layout per shard (one row of :data:`SLOTS_PER_SHARD` uint64s):

=============  ===============================================
slot           meaning
=============  ===============================================
HEARTBEAT      bumped by the child after every served segment
               and every replayed journal chunk
PROCESSED      ops applied by the child since spawn
BATCHES        batches served since spawn
SEGMENTS       segments served since spawn
REPLAYED       journal entries replayed during the last spawn
INCARNATION    monotonically increasing spawn counter
TRIPPED        1 while the child's structure serves full-key
ALIVE          1 from child startup until a clean stop
=============  ===============================================
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional

import numpy as np

HEARTBEAT = 0
PROCESSED = 1
BATCHES = 2
SEGMENTS = 3
REPLAYED = 4
INCARNATION = 5
TRIPPED = 6
ALIVE = 7

SLOT_NAMES = (
    "heartbeat", "processed", "batches", "segments",
    "replayed", "incarnation", "tripped", "alive",
)
SLOTS_PER_SHARD = len(SLOT_NAMES)


def _release(shm, holder: dict) -> None:
    """Best-effort teardown of the backing segment.  The numpy view in
    ``holder`` must drop first — it exports the shm buffer, and
    ``close`` refuses (``BufferError``) while exported pointers exist.
    ``unlink`` runs regardless: it only removes the name, and the pages
    are reclaimed at process exit even if a stray view kept the mapping
    alive."""
    holder["array"] = None
    if shm is None:
        return
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):
        pass
    try:
        shm.close()
    except (BufferError, OSError):
        pass


class ShardStateBlock:
    """``num_shards`` rows of per-shard uint64 progress counters."""

    def __init__(self, num_shards: int, shared: bool = True):
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards
        nbytes = num_shards * SLOTS_PER_SHARD * 8
        self._shm = None
        self._local: Optional[bytearray] = None
        if shared:
            try:
                from multiprocessing import shared_memory

                self._shm = shared_memory.SharedMemory(
                    create=True, size=nbytes
                )
                buf = self._shm.buf
            except (ImportError, OSError):
                self._shm = None
        if self._shm is None:
            # No shared-memory filesystem available: fall back to a
            # process-local buffer.  Child writes become invisible to
            # the parent, which costs heartbeat visibility only.
            self._local = bytearray(nbytes)
            buf = memoryview(self._local)
        self._holder = {
            "array": np.frombuffer(buf, dtype=np.uint64).reshape(
                num_shards, SLOTS_PER_SHARD
            )
        }
        self._array[:] = 0
        self._finalizer = weakref.finalize(
            self, _release, self._shm, self._holder
        )

    @property
    def _array(self) -> np.ndarray:
        array = self._holder["array"]
        if array is None:
            raise ValueError("ShardStateBlock is closed")
        return array

    @property
    def shared(self) -> bool:
        """True when backed by real cross-process shared memory."""
        return self._shm is not None

    @property
    def name(self) -> Optional[str]:
        """The shared-memory segment name (None for local fallback)."""
        return self._shm.name if self._shm is not None else None

    def view(self, shard: int) -> np.ndarray:
        """The live uint64 row for one shard (a view, not a copy)."""
        return self._array[shard]

    def reset(self, shard: int, incarnation: int) -> None:
        """Zero a shard's row for a fresh spawn (parent side, before
        the fork, so the child starts from a clean slate)."""
        row = self._array[shard]
        row[:] = 0
        row[INCARNATION] = incarnation

    def heartbeat(self, shard: int) -> int:
        return int(self._array[shard, HEARTBEAT])

    def snapshot(self, shard: int) -> Dict[str, int]:
        row = self._array[shard]
        return {name: int(row[i]) for i, name in enumerate(SLOT_NAMES)}

    def close(self) -> None:
        """Unlink and release the backing segment (idempotent)."""
        self._finalizer()

    def __repr__(self) -> str:
        backing = "shm" if self.shared else "local"
        return (f"ShardStateBlock(num_shards={self.num_shards}, "
                f"backing={backing!r})")


__all__ = [
    "ShardStateBlock",
    "SLOT_NAMES",
    "SLOTS_PER_SHARD",
    "HEARTBEAT",
    "PROCESSED",
    "BATCHES",
    "SEGMENTS",
    "REPLAYED",
    "INCARNATION",
    "TRIPPED",
    "ALIVE",
]
