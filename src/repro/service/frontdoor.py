"""Asyncio network front door: real sockets in front of the shards.

Until PR 8 "millions of users" was simulated by a loop calling
``Service.submit_batch`` in the same interpreter.  The front door puts
an actual serving boundary in front of the service: clients connect
over TCP, speak the length-prefixed JSON protocol
(:mod:`repro.service.netproto`), and their requests are *coalesced
across connections* into the same vectorized admission path the
in-process client uses — one ``submit_batch`` per admission round, so
a hundred trickling connections still hash in compiled batches.

Design rules, in order of importance:

* **The service is single-threaded property of the event loop.**
  Every touch of :class:`~repro.service.service.Service` happens on
  the loop thread — connection readers, the admission loop, and
  anything an outside thread schedules via
  :meth:`FrontDoorThread.run_in_loop` (the CLI's ``--force-split``
  drill uses this).  No locks, no torn state.
* **Backpressure is propagated, never absorbed.**  A shard-queue
  rejection travels to the client verbatim as a ``rejected`` status
  carrying ``retry_after`` — the front door keeps no secret overflow
  queue that would turn explicit backpressure back into silent
  buffering.  A per-connection in-flight cap (``max_pending``) rejects
  the same way before admission when one connection tries to own the
  whole pipeline.
* **Routing flips are invisible to the network.**  A ticket answered
  ``WRONG_GENERATION`` (a split/promotion moved its key between
  admission and dispatch) is resubmitted server-side through the live
  routing table; the client just sees its answer arrive one round
  later.
* **Shutdown drains.**  ``stop()`` stops accepting connections,
  answers every in-flight ticket, turns frames that race the shutdown
  away with a ``draining`` status, and only then closes sockets — an
  acknowledged write can never be dropped by a restart of the front
  door itself.

The ``stats`` op doubles as the ``/metrics`` verb: the front door
answers it synchronously with the service's stats dict plus its own
``frontdoor`` counters (connections, coalesced batch sizes, propagated
rejections, server-side resubmits), so one request scrapes the whole
serving stack.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Dict, List, Optional, Set

from repro.service import netproto
from repro.service.protocol import (
    OK,
    REJECTED,
    WRONG_GENERATION,
    Request,
    Response,
)
from repro.service.service import Service

_READ_CHUNK = 1 << 16


class _Rpc:
    """One in-flight request frame: where the answer must go."""

    __slots__ = ("connection", "frame_id", "request")

    def __init__(self, connection: "_Connection", frame_id: int,
                 request: Request):
        self.connection = connection
        self.frame_id = frame_id
        self.request = request


class _Connection:
    """Server-side connection state: reader + serialized writer."""

    def __init__(self, door: "FrontDoor",
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.door = door
        self.reader = reader
        self.writer = writer
        self.outgoing: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        self.pending = 0          # frames admitted but not yet answered
        self.frames_in = 0
        self.closed = False

    def send(self, frame: bytes) -> None:
        if not self.closed:
            self.outgoing.put_nowait(frame)

    async def writer_loop(self) -> None:
        try:
            while True:
                frame = await self.outgoing.get()
                if frame is None:
                    break
                self.writer.write(frame)
                if self.outgoing.empty():
                    await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.closed = True
            self.writer.close()


class FrontDoor:
    """A TCP front door over one :class:`Service` (owns its pumping).

    Construct, then ``await start()`` from a running event loop — or
    use :class:`FrontDoorThread` to run the whole thing on a dedicated
    thread from synchronous code.
    """

    def __init__(
        self,
        service: Service,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 1024,
        max_resubmits: int = 16,
        max_frame: int = netproto.MAX_FRAME_BYTES,
    ):
        self.service = service
        self.host = host
        self._requested_port = port
        self.max_pending = max_pending
        self.max_resubmits = max_resubmits
        self.max_frame = max_frame
        self._server: Optional[asyncio.base_events.Server] = None
        self._admission_task: Optional[asyncio.Task] = None
        self._connections: Set[_Connection] = set()
        self._intake: List[_Rpc] = []
        self._wake: Optional[asyncio.Event] = None
        self._draining = False
        self._stopped = asyncio.Event()
        # Observability counters (reported under stats()["frontdoor"]).
        self.connections_total = 0
        self.frames_in = 0
        self.responses_out = 0
        self.bad_frames = 0
        self.drained_frames = 0
        self.admission_batches = 0
        self.admitted = 0
        self.max_coalesced = 0
        self.pumps = 0
        self.rejections_propagated = 0
        self.resubmits = 0
        self.admission_error: Optional[str] = None

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._wake = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self._admission_task = asyncio.ensure_future(self._admission_loop())

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful drain: answer everything in flight, then close."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        self._wake.set()
        if self._admission_task is not None:
            try:
                await self._admission_task
            except Exception as exc:  # keep teardown going; surface it
                self.admission_error = repr(exc)
        for connection in list(self._connections):
            connection.send(None)  # type: ignore[arg-type]
        # Closing each writer EOFs its reader, which retires the
        # handler; wait (bounded) so the loop shuts down quiet.  A
        # client that holds its socket open past the bound is simply
        # abandoned — every response it was owed has been written.
        for _ in range(200):
            if not self._connections:
                break
            await asyncio.sleep(0.005)
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # ---------------------------------------------------------- connection

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        connection = _Connection(self, reader, writer)
        self._connections.add(connection)
        self.connections_total += 1
        writer_task = asyncio.ensure_future(connection.writer_loop())
        decoder = netproto.FrameDecoder(self.max_frame)
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                for payload in decoder.feed(data):
                    self._on_frame(connection, payload)
        except netproto.ProtocolError:
            # The stream itself is corrupt (oversized length prefix,
            # non-JSON body): there is no frame id to answer, so the
            # only safe move is to drop the connection.
            self.bad_frames += 1
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            connection.send(None)  # type: ignore[arg-type]
            await writer_task
            self._connections.discard(connection)

    def _on_frame(self, connection: _Connection,
                  payload: Dict[str, object]) -> None:
        connection.frames_in += 1
        self.frames_in += 1
        try:
            frame_id = netproto.frame_id_of(payload)
        except netproto.ProtocolError:
            self.bad_frames += 1
            return  # unanswerable: no id to echo
        try:
            request = netproto.decode_request(payload)
        except netproto.ProtocolError as exc:
            self.bad_frames += 1
            connection.send(
                netproto.encode_status(
                    frame_id, netproto.BAD_REQUEST, error=str(exc)
                )
            )
            return
        if self._draining:
            self.drained_frames += 1
            connection.send(
                netproto.encode_status(
                    frame_id, netproto.DRAINING,
                    error="front door is draining for shutdown",
                )
            )
            return
        if request.op == "stats":
            # The /metrics verb: answered synchronously on the loop
            # thread (no admission round-trip), service + front door.
            self.responses_out += 1
            connection.send(
                netproto.encode_response(
                    frame_id, Response(OK, stats=self._metrics())
                )
            )
            return
        if connection.pending >= self.max_pending:
            # Per-connection backpressure: this connection already owns
            # max_pending unanswered frames; pushing more would let one
            # client buffer without bound inside the server.
            self.rejections_propagated += 1
            connection.send(
                netproto.encode_status(
                    frame_id, REJECTED,
                    error="connection pipeline full",
                    retry_after=1,
                )
            )
            return
        connection.pending += 1
        self._intake.append(_Rpc(connection, frame_id, request))
        self._wake.set()

    # ----------------------------------------------------------- admission

    def _respond(self, rpc: _Rpc, response: Response) -> None:
        rpc.connection.pending -= 1
        self.responses_out += 1
        rpc.connection.send(netproto.encode_response(rpc.frame_id, response))

    async def _admission_loop(self) -> None:
        """Coalesce frames across connections into submit_batch rounds.

        One iteration: drain the intake into a single vectorized
        admission pass, answer the synchronously-resolved tickets
        (rejections), pump once for the in-flight rest, absorb
        completions (resubmitting ``WRONG_GENERATION`` stragglers
        through the live routing table), then yield so connection
        readers can refill the intake — frames arriving during a pump
        join the *next* admission batch, which is exactly the
        micro-batching window.
        """
        service = self.service
        inflight: List[List] = []  # [ticket, rpc, resubmit_count]
        while True:
            if not self._intake and not inflight:
                if self._draining:
                    return
                self._wake.clear()
                # Re-check after clearing: a reader may have appended
                # between the test above and the clear.
                if not self._intake and not self._draining:
                    await self._wake.wait()
                continue
            if self._intake:
                batch, self._intake = self._intake, []
                self.admission_batches += 1
                self.admitted += len(batch)
                self.max_coalesced = max(self.max_coalesced, len(batch))
                tickets = service.submit_batch(
                    [rpc.request for rpc in batch]
                )
                for rpc, ticket in zip(batch, tickets):
                    if ticket.response is not None:
                        if ticket.rejected:
                            self.rejections_propagated += 1
                        self._respond(rpc, ticket.response)
                    else:
                        inflight.append([ticket, rpc, 0])
            if inflight:
                service.pump()
                self.pumps += 1
                still: List[List] = []
                for entry in inflight:
                    ticket, rpc, resubmits = entry
                    response = ticket.response
                    if response is None:
                        still.append(entry)
                    elif (response.status == WRONG_GENERATION
                            and resubmits < self.max_resubmits):
                        # A flip moved the key between admission and
                        # dispatch.  Resubmit through the now-live
                        # table; the network never sees the status.
                        self.resubmits += 1
                        ticket = service.submit(rpc.request)
                        if ticket.response is None:
                            still.append([ticket, rpc, resubmits + 1])
                        else:
                            if ticket.rejected:
                                self.rejections_propagated += 1
                            self._respond(rpc, ticket.response)
                    else:
                        self._respond(rpc, response)
                inflight = still
            # The coalescing window: let readers run before the next
            # admission round.
            await asyncio.sleep(0)

    # --------------------------------------------------------------- stats

    def stats(self) -> Dict[str, object]:
        return {
            "host": self.host,
            "port": self.port,
            "draining": self._draining,
            "connections_open": len(self._connections),
            "connections_total": self.connections_total,
            "frames_in": self.frames_in,
            "responses_out": self.responses_out,
            "bad_frames": self.bad_frames,
            "drained_frames": self.drained_frames,
            "admission_batches": self.admission_batches,
            "admitted": self.admitted,
            "max_coalesced": self.max_coalesced,
            "mean_coalesced": (
                self.admitted / self.admission_batches
                if self.admission_batches else 0.0
            ),
            "pumps": self.pumps,
            "rejections_propagated": self.rejections_propagated,
            "resubmits": self.resubmits,
            "admission_error": self.admission_error,
        }

    def _metrics(self) -> Dict[str, object]:
        metrics = self.service.stats()
        metrics["frontdoor"] = self.stats()
        return metrics


class FrontDoorThread:
    """Run a :class:`FrontDoor` (and its event loop) on its own thread.

    Synchronous code — the CLI, benchmarks, tests, the fuzz target —
    starts the thread, connects :class:`~repro.service.client.
    NetworkClient` instances against ``.port``, and schedules any
    direct service mutation (a forced split, a tripped monitor)
    through :meth:`run_in_loop` so the single-threaded-service rule
    holds.  ``stop()`` drains and joins.
    """

    def __init__(self, service: Service, host: str = "127.0.0.1",
                 port: int = 0, **door_kwargs):
        self.door = FrontDoor(service, host, port, **door_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name="frontdoor", daemon=True
        )
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None

    def start(self) -> "FrontDoorThread":
        self._thread.start()
        self._started.wait()
        if self._start_error is not None:
            self._thread.join()
            raise self._start_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        try:
            await self.door.start()
        except BaseException as exc:  # surface bind errors to start()
            self._start_error = exc
            self._started.set()
            return
        self._started.set()
        await self.door.wait_stopped()

    @property
    def port(self) -> int:
        return self.door.port

    def run_in_loop(self, fn, *args, timeout: float = 30.0, **kwargs):
        """Run ``fn(*args, **kwargs)`` on the loop thread; return its
        result.  Callbacks interleave only at the admission loop's
        await points, i.e. *between* pumps — the same "no batch
        outstanding" barrier the supervisor's own reconfiguration
        relies on, which is what makes a mid-run ``split_shard`` safe
        here."""
        if self._loop is None:
            raise RuntimeError("front door thread is not running")
        future: "concurrent.futures.Future" = concurrent.futures.Future()

        def call() -> None:
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:
                future.set_exception(exc)

        self._loop.call_soon_threadsafe(call)
        return future.result(timeout=timeout)

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the front door and join its thread.  Idempotent."""
        if self._loop is None or not self._thread.is_alive():
            return
        concurrent.futures.wait(
            [asyncio.run_coroutine_threadsafe(self.door.stop(), self._loop)],
            timeout=timeout,
        )
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "FrontDoorThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


__all__ = ["FrontDoor", "FrontDoorThread"]
