"""Per-shard circuit breakers over the partial-key fast path.

PR 4 gave the service one all-or-nothing degraded mode: any shard's
CollisionMonitor tripping pushed *every* shard to full-key hashing.
That throws away the entropy-learned win on healthy shards to protect
one unlucky one.  A :class:`CircuitBreaker` scopes the reaction to the
shard that actually misbehaved, and — unlike PR 4's one-way latch —
probes its way back:

* ``CLOSED``     — partial-key serving; a monitor trip opens the breaker.
* ``OPEN``       — the shard serves full-key (correct, slower) while a
  cooldown of ``cooldown_pumps`` service pumps elapses.
* ``HALF_OPEN``  — the shard is restored to partial-key hashing with a
  fresh monitor and watched for ``probe_pumps`` pumps.  A clean probe
  re-closes the breaker; a re-trip re-opens it with the cooldown
  doubled (capped), so a genuinely low-entropy shard backs off toward
  permanent full-key instead of flapping.

The breaker is clocked by service pumps, not wall time, which keeps the
whole lifecycle deterministic under the chaos fuzz target.
"""

from __future__ import annotations

from typing import Dict

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Pump-clocked open/half-open/closed lifecycle for one shard."""

    def __init__(
        self,
        shard: int,
        cooldown_pumps: int = 32,
        probe_pumps: int = 16,
        max_cooldown_pumps: int = 1024,
    ):
        if cooldown_pumps < 1:
            raise ValueError(f"cooldown_pumps must be >= 1, got {cooldown_pumps}")
        if probe_pumps < 1:
            raise ValueError(f"probe_pumps must be >= 1, got {probe_pumps}")
        self.shard = shard
        self.state = CLOSED
        self.base_cooldown = cooldown_pumps
        self.cooldown_pumps = cooldown_pumps
        self.probe_pumps = probe_pumps
        self.max_cooldown_pumps = max_cooldown_pumps
        self._deadline = 0  # pump index at which the current state expires
        self.opens = 0
        self.reopens = 0
        self.closes = 0

    # ----------------------------------------------------------- queries

    @property
    def closed(self) -> bool:
        return self.state == CLOSED

    # ------------------------------------------------------- transitions

    def trip(self, pump_index: int) -> None:
        """A monitor trip (or injected corruption) opened the circuit."""
        if self.state == OPEN:
            return  # already open; the cooldown keeps counting
        if self.state == HALF_OPEN:
            # The probe failed: back off harder before the next attempt.
            self.reopens += 1
            self.cooldown_pumps = min(
                self.cooldown_pumps * 2, self.max_cooldown_pumps
            )
        else:
            self.opens += 1
        self.state = OPEN
        self._deadline = pump_index + self.cooldown_pumps

    def tick(self, pump_index: int) -> str:
        """Advance the pump clock; returns an action for the service.

        ``"probe"``  — cooldown elapsed: restore partial-key hashing and
        start watching.  ``"close"`` — the probe survived its window:
        re-close and reset the backoff.  ``"hold"`` — nothing to do.
        """
        if self.state == OPEN and pump_index >= self._deadline:
            self.state = HALF_OPEN
            self._deadline = pump_index + self.probe_pumps
            return "probe"
        if self.state == HALF_OPEN and pump_index >= self._deadline:
            self.state = CLOSED
            self.cooldown_pumps = self.base_cooldown
            self.closes += 1
            return "close"
        return "hold"

    def reset(self) -> None:
        """Force-close and clear the backoff (drift plan swap).

        A re-learn replaced the plan the breaker was guarding: its open
        state and doubled cooldown describe a hasher that no longer
        exists, so the swap path closes the circuit outright.  The
        lifetime open/close counters are kept — only the state and the
        backoff reset.
        """
        self.state = CLOSED
        self.cooldown_pumps = self.base_cooldown
        self._deadline = 0

    # -------------------------------------------------------------- stats

    def stats(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "state": self.state,
            "opens": self.opens,
            "reopens": self.reopens,
            "closes": self.closes,
            "cooldown_pumps": self.cooldown_pumps,
        }

    def __repr__(self) -> str:
        return (f"CircuitBreaker(shard={self.shard}, state={self.state!r}, "
                f"opens={self.opens}, reopens={self.reopens}, "
                f"closes={self.closes})")


__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]
