"""Per-shard append-only op journals: the crash-recovery source of truth.

A :class:`ShardJournal` records every *acknowledged* mutation a worker
applied to its structure — ``("put", key, value)`` when the put was
answered OK, ``("delete", key)`` when the delete was answered — in ack
order.  Replaying the journal into a fresh adapter reconstructs exactly
the acknowledged state, which is what lets the
:class:`~repro.service.supervisor.Supervisor` restart a crashed worker
without losing a single acked write: un-acked work is simply not in the
journal, and the reconciliation pass re-enqueues its tickets instead.

Journals are bounded by *checkpointing*: past ``checkpoint_every``
entries the journal compacts itself to the minimal op list with the
same replay result — newest-wins per key for map-like backends, net
add/remove counts for multiset-like ones (a cuckoo filter stores one
fingerprint copy per add, so newest-wins would corrupt multiplicity).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

# One journal entry: (op, key, value-or-None).
Entry = Tuple[str, bytes, Optional[bytes]]


def replay_entries(adapter, entries, progress=None, key_filter=None) -> int:
    """Re-apply a journal entry sequence to a fresh adapter.

    Consecutive same-op runs go down the adapter's batch paths, the
    same amortization the live serving path uses.  This is a module
    function (not a method) because a process-backend child replays a
    *snapshot* of the parent's journal into its own structure at spawn
    time — the journal object itself never leaves the parent.

    ``progress``, when given, is called with each run's length after it
    applies; the shard child uses it to bump its shared-memory
    heartbeat so the parent can tell a long replay from a hung spawn.

    ``key_filter``, when given, restricts the replay to entries whose
    key satisfies the predicate — the range-filtered replay a live
    shard split uses to materialize only the migrating half of a donor
    journal.  Returns the number of ops replayed.
    """
    entries = list(entries) if not isinstance(entries, list) else entries
    if key_filter is not None:
        entries = [entry for entry in entries if key_filter(entry[1])]
    i, n = 0, len(entries)
    while i < n:
        op = entries[i][0]
        j = i + 1
        while j < n and entries[j][0] == op:
            j += 1
        keys = [entry[1] for entry in entries[i:j]]
        if op == "put":
            values = [entry[2] or b"" for entry in entries[i:j]]
            adapter.put_batch(keys, values)
        else:
            adapter.delete_batch(keys)
        if progress is not None:
            progress(j - i)
        i = j
    return n


class ShardJournal:
    """Append-only acked-mutation log with compacting checkpoints."""

    def __init__(self, checkpoint_every: int = 4096, multiset: bool = False):
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.entries: List[Entry] = []
        self.checkpoint_every = checkpoint_every  # 0 disables checkpoints
        self.multiset = multiset
        self.appended = 0
        self.truncations = 0
        self.replays = 0
        # Shape of the most recent checkpoint(), for observability:
        # {"before", "after", "dropped", "at_append"}; None until the
        # first compaction runs.
        self.last_compaction: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------- append

    def record_put(self, key: bytes, value: bytes) -> None:
        self.entries.append(("put", key, value))
        self.appended += 1
        self._maybe_checkpoint()

    def record_delete(self, key: bytes) -> None:
        self.entries.append(("delete", key, None))
        self.appended += 1
        self._maybe_checkpoint()

    # --------------------------------------------------------- checkpoint

    def _maybe_checkpoint(self) -> None:
        if self.checkpoint_every and len(self.entries) > self.checkpoint_every:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Compact to the minimal op list with the same replay result."""
        before = len(self.entries)
        if self.multiset:
            # Net copies per key; order of first add is preserved so the
            # replayed structure fills in a deterministic order.
            counts: Dict[bytes, int] = {}
            order: List[bytes] = []
            for op, key, _ in self.entries:
                if key not in counts:
                    counts[key] = 0
                    order.append(key)
                counts[key] += 1 if op == "put" else -1
            compacted: List[Entry] = []
            for key in order:
                compacted.extend(("put", key, b"") for _ in range(counts[key])
                                 if counts[key] > 0)
        else:
            live: Dict[bytes, Optional[bytes]] = {}
            order = []
            for op, key, value in self.entries:
                if key not in live:
                    order.append(key)
                live[key] = value if op == "put" else None
            compacted = [
                ("put", key, live[key])  # type: ignore[misc]
                for key in order
                if live[key] is not None
            ]
        self.entries = compacted
        self.truncations += 1
        self.last_compaction = {
            "before": before,
            "after": len(compacted),
            "dropped": before - len(compacted),
            "at_append": self.appended,
        }

    # ---------------------------------------------------------- migration

    def split_by(self, predicate) -> List[Entry]:
        """Remove and return every entry whose key satisfies the
        predicate, preserving ack order on both sides.

        This is the donor half of a live shard split: the migrating
        range's entries leave the donor journal (so a later donor
        restart does not resurrect moved keys) and seed the new shard's
        journal verbatim — replaying them there reconstructs exactly
        the acknowledged state of the moved range.
        """
        moved: List[Entry] = []
        kept: List[Entry] = []
        for entry in self.entries:
            (moved if predicate(entry[1]) else kept).append(entry)
        self.entries = kept
        return moved

    def extend(self, entries: List[Entry]) -> None:
        """Append migrated entries (already in their own ack order)."""
        self.entries.extend(entries)
        self.appended += len(entries)
        self._maybe_checkpoint()

    def replace(self, entries: List[Entry]) -> None:
        """Swap in a rewritten entry list (post-migration donor state).

        Unlike :meth:`extend` this does not count as new appends: the
        entries were already acked and counted when first recorded.
        """
        self.entries = list(entries)

    # ------------------------------------------------------------- replay

    def snapshot(self) -> List[Entry]:
        """A copy of the entry list, safe to ship to a shard child.

        Entries are immutable tuples of bytes, so a shallow list copy
        fully isolates the child's replay input from later appends.
        """
        return list(self.entries)

    def mark_replay(self) -> None:
        """Count a replay performed elsewhere (a process-backend child
        replaying a :meth:`snapshot` on its side of the fork)."""
        self.replays += 1

    def replay(self, adapter) -> int:
        """Re-apply every journaled mutation to a fresh adapter.

        Consecutive same-op runs go down the adapter's batch paths, the
        same amortization the live serving path uses.  Returns the
        number of ops replayed.
        """
        self.replays += 1
        return replay_entries(adapter, self.entries)

    # -------------------------------------------------------------- stats

    def stats(self) -> Dict[str, object]:
        return {
            "length": len(self.entries),
            "appended": self.appended,
            "truncations": self.truncations,
            "replays": self.replays,
            "checkpoint_every": self.checkpoint_every,
            "multiset": self.multiset,
            "last_compaction": (
                dict(self.last_compaction) if self.last_compaction else None
            ),
        }

    def __len__(self) -> int:
        return len(self.entries)


__all__ = ["ShardJournal", "Entry", "replay_entries"]
