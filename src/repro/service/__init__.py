"""`repro.service` — a sharded, batched request-serving layer.

The serving story in one paragraph: a :class:`ShardRouter` assigns each
key to a shard with the learned partitioning hasher (one fused
engine pass, balance monitored against the paper's relative bound);
per-shard :class:`Worker`s own one structure each and drain bounded op
queues in micro-batches down the structures' batch paths; the
:class:`Service` front door speaks a small typed protocol
(get/put/delete/contains/stats) with explicit backpressure, and flips
the whole fleet to full-key hashing the moment any shard's
CollisionMonitor trips.  :class:`ServiceClient` wraps it all in plain
blocking calls for in-process use, load generation, and tests.
"""

from repro.service.client import (
    ServiceClient,
    ServiceOverloadedError,
    run_service_workload,
)
from repro.service.protocol import FAILED, OK, OPS, REJECTED, Request, Response, Ticket
from repro.service.router import ShardRouter
from repro.service.service import Service
from repro.service.worker import BACKENDS, Worker, make_adapter

__all__ = [
    "BACKENDS",
    "FAILED",
    "OK",
    "OPS",
    "REJECTED",
    "Request",
    "Response",
    "Service",
    "ServiceClient",
    "ServiceOverloadedError",
    "ShardRouter",
    "Ticket",
    "Worker",
    "make_adapter",
    "run_service_workload",
]
