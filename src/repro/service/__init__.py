"""`repro.service` — a sharded, batched, self-healing serving layer.

The serving story in one paragraph: a :class:`ShardRouter` assigns each
key to a shard with the learned partitioning hasher (one fused
engine pass, balance monitored against the paper's relative bound);
per-shard :class:`Worker`s own one structure each and drain bounded op
queues in micro-batches down the structures' batch paths; the
:class:`Service` front door speaks a small typed protocol
(get/put/delete/contains/stats) with explicit backpressure.  Since PR 5
the layer is fault-tolerant: every acked mutation lands in a per-shard
:class:`ShardJournal`, a :class:`Supervisor` restarts crashed or
stalled workers from their journals and requeues tickets that fell out
of the pipeline, and a monitor trip opens only that shard's
:class:`CircuitBreaker` — the shard serves full-key through a cooldown,
probes its way back to partial-key hashing, and its siblings never stop
using the entropy-learned fast path.  :class:`ServiceClient` wraps it
all in plain blocking calls with bounded waiting (backoff budgets and
deadlines) for in-process use, load generation, and tests.

Since PR 6 *where* a shard executes is pluggable: the worker shell
(queue, tickets, journal, fault hooks) delegates structure work to an
:class:`ExecutionBackend` — :class:`InlineBackend` keeps the original
cooperative single-interpreter pump as the differential-fuzzer
reference, :class:`ProcessBackend` runs one OS process per shard over
bounded ``multiprocessing`` queues with heartbeat counters in shared
memory, so N shards finally use N cores and a real ``kill -9`` is just
another recoverable crash.

Since PR 7 the route itself is versioned: the router is a facade over a
generation-stamped :class:`RoutingTable` (pinned base hash + hot-key
overlay + split map).  A :class:`HotKeyTracker` (Count-Min sketch)
detects heavy hitters online so the supervisor's adapt pass can pin
them to least-loaded shards, and overloaded shards can be split live —
journal-replay migration, generation flip, queue sweep — with a
``WRONG_GENERATION`` protocol status (and transparent client retry) as
the safety net for stragglers.
"""

from repro.service.adapters import AdapterSpec, make_adapter
from repro.service.backends import (
    EXECUTIONS,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    fork_available,
)
from repro.service.breaker import CircuitBreaker
from repro.service.client import (
    DeadlineExceededError,
    NetworkClient,
    NetworkRequestError,
    ServiceClient,
    ServiceDrainingError,
    ServiceOverloadedError,
    run_service_workload,
)
from repro.service.core import ShardCore
from repro.service.frontdoor import FrontDoor, FrontDoorThread
from repro.service.hotkeys import HotKeyTracker
from repro.service.journal import ShardJournal
from repro.service.protocol import (
    FAILED,
    OK,
    OPS,
    REJECTED,
    WRONG_GENERATION,
    Request,
    Response,
    Ticket,
)
from repro.service.router import ShardRouter
from repro.service.routing import RoutingTable
from repro.service.service import Service
from repro.service.state import ShardStateBlock
from repro.service.supervisor import Supervisor
from repro.service.worker import BACKENDS, Worker

__all__ = [
    "AdapterSpec",
    "BACKENDS",
    "CircuitBreaker",
    "EXECUTIONS",
    "ExecutionBackend",
    "InlineBackend",
    "ProcessBackend",
    "ShardCore",
    "ShardStateBlock",
    "fork_available",
    "DeadlineExceededError",
    "FAILED",
    "FrontDoor",
    "FrontDoorThread",
    "HotKeyTracker",
    "NetworkClient",
    "NetworkRequestError",
    "OK",
    "OPS",
    "REJECTED",
    "Request",
    "Response",
    "RoutingTable",
    "Service",
    "ServiceClient",
    "ServiceDrainingError",
    "ServiceOverloadedError",
    "ShardJournal",
    "ShardRouter",
    "Supervisor",
    "WRONG_GENERATION",
    "Ticket",
    "Worker",
    "make_adapter",
    "run_service_workload",
]
