"""The supervisor: restart crashed workers, unstick stalled ones,
reconcile tickets that fell out of the pipeline.

The supervisor runs at the *start* of every ``Service.pump`` — before
any worker serves — so a ticket recovered from a crash, a dropped
batch, or a lost queue slot is re-enqueued at the *front* of its shard
queue before any later-admitted operation on the same key can be
served.  That ordering is what keeps the admission-time oracle of the
differential harness (and the per-key FIFO contract of PR 4) sound
under faults.

Recovery sources of truth, in order:

* the per-shard :class:`~repro.service.journal.ShardJournal` — every
  acknowledged mutation, replayed into a fresh structure on restart;
* the worker's inflight registry — tickets popped from the queue but
  never answered (crash or injected drop) are requeued, in
  ``request_id`` order, ahead of everything still queued;
* pump-count heartbeats — a worker whose queue is non-empty but whose
  ``processed`` counter stagnates for ``stall_threshold`` consecutive
  service pumps is declared stalled and restarted the same way.

Since PR 7 the supervisor also owns the *adapt* pass — the resharding
state machine.  Every ``adapt_every`` pumps it runs observe → plan →
migrate → flip → drain: apply the router's planned hot-key promotions,
and (when ``auto_split`` is on) watch each shard's share of the routed
traffic over the last window; a shard that carries more than
``split_threshold`` times its fair share for two consecutive windows is
split via :meth:`Service.split_shard`.  Both reconfigurations run at
pump start, where the two-phase barrier guarantees nothing is in
flight — the freeze/drain steps of the split protocol hold by
construction, and the flip's queue sweep finishes the drain.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Supervisor:
    """Pump-clocked babysitter for a service's worker fleet."""

    # An overload must persist this many consecutive adapt windows
    # before a split fires: one hot window is noise, two is a regime.
    SPLIT_PATIENCE = 2
    # Ignore adapt windows with less than this many routed ops per
    # shard on average — too little signal to call anything overloaded.
    MIN_WINDOW_PER_SHARD = 8

    def __init__(self, service, stall_threshold: int = 3):
        if stall_threshold < 1:
            raise ValueError(
                f"stall_threshold must be >= 1, got {stall_threshold}"
            )
        self.service = service
        self.stall_threshold = stall_threshold
        n = service.num_shards
        self._last_processed: List[int] = [0] * n
        self._stagnant: List[int] = [0] * n
        self._routed_snapshot: List[int] = [0] * n
        self._split_patience: Dict[int, int] = {}
        self.crashes_seen = 0
        self.stalls_detected = 0
        self.restarts = 0
        self.reconciled_tickets = 0
        self.promotions_applied = 0
        self.splits_triggered = 0
        self.relearns_applied = 0

    # ---------------------------------------------------------- lifecycle

    def note_crash(self, worker) -> None:
        """A worker raised mid-batch this pump; restart happens at the
        start of the next pump, before anything else is served."""
        self.crashes_seen += 1

    def observe(self, pump_index: int) -> None:
        """One supervision pass; runs before the workers pump."""
        for worker, breaker in zip(self.service.workers,
                                   self.service.breakers):
            shard = worker.shard_id
            if worker.crashed:
                self._restart(worker, breaker)
                continue
            # Tickets that left the queue but never got an answer
            # (dropped batch, lost queue slot) go back to the front.
            lost = worker.reconcile()
            if lost:
                self._requeue(worker, lost)
            # Heartbeat: queued work + a frozen processed counter for
            # stall_threshold straight pumps means the worker is stuck.
            if worker.queue and worker.processed == self._last_processed[shard]:
                self._stagnant[shard] += 1
                if self._stagnant[shard] >= self.stall_threshold:
                    self.stalls_detected += 1
                    self._restart(worker, breaker)
            else:
                self._stagnant[shard] = 0
            self._last_processed[shard] = worker.processed

    def _restart(self, worker, breaker) -> None:
        """Fresh structure + journal replay + inflight reconciliation."""
        lost = worker.restart()
        # The new structure gets the same fault wiring the old one had
        # (injection hooks live on the engine, which was just rebuilt).
        self.service._arm_worker(worker)
        if not breaker.closed:
            # The shard is still quarantined: the rebuilt structure must
            # serve full-key until the breaker's probe says otherwise.
            worker.fall_back()
        if lost:
            self._requeue(worker, lost)
        self.restarts += 1
        shard = worker.shard_id
        self._stagnant[shard] = 0
        self._last_processed[shard] = worker.processed

    def _requeue(self, worker, lost) -> None:
        """Return recovered tickets to the front of the right queue.

        Before PR 7 "the right queue" was always the worker they fell
        out of; with versioned routing a flip may have moved their keys
        since admission, so each ticket re-routes through the *current*
        table first.  Without that, a recovered ticket for a migrated
        key would be served against the donor's post-migration state.
        """
        self.reconciled_tickets += len(lost)
        service = self.service
        router = service.router
        if router.generation == 0:
            worker.requeue_front(lost)
            return
        shards = router.table.route_batch([t.request.key for t in lost])
        groups: Dict[int, List] = {}
        for ticket, shard in zip(lost, shards):
            shard = int(shard)
            ticket.generation = router.generation
            ticket.shard = shard
            groups.setdefault(shard, []).append(ticket)
        for shard, tickets in groups.items():
            service.workers[shard].requeue_front(tickets)

    # ----------------------------------------------------------- adapting

    def grow(self) -> None:
        """Track a shard added by a live split."""
        self._last_processed.append(0)
        self._stagnant.append(0)
        self._routed_snapshot.append(0)

    def adapt(self, pump_index: int) -> None:
        """The resharding state machine: plan → migrate → flip → drain.

        Runs every ``adapt_every`` pumps, between batches (nothing in
        flight).  Promotions pin the tracker's heavy hitters; when
        ``auto_split`` is on, a shard that carried more than
        ``split_threshold`` times its fair traffic share for
        ``SPLIT_PATIENCE`` consecutive windows donates half its key
        range to a freshly spawned shard.
        """
        service = self.service
        if pump_index % service.adapt_every != 0:
            return
        if service.relearner is not None:
            # Drift pass first: a swap rehashes between pumps, and any
            # promotion/split this window then sees the new plan.  The
            # relearner has its own flap guards (patience, min dwell,
            # no-op suppression), so calling it every window is cheap.
            if service.relearner.pump(pump_index) == "swap":
                self.relearns_applied += 1
        if service.router.tracker is not None:
            self.promotions_applied += service._apply_promotions()
        if not service.auto_split or service.splits >= service.max_splits:
            return
        donor = self._overloaded_shard()
        if donor is None:
            self._split_patience.clear()
            return
        patience = self._split_patience.get(donor, 0) + 1
        self._split_patience = {donor: patience}
        if patience >= self.SPLIT_PATIENCE:
            self._split_patience.clear()
            service.split_shard(donor)
            self.splits_triggered += 1

    def _overloaded_shard(self) -> Optional[int]:
        """The shard beyond ``split_threshold``× fair share over the
        last adapt window (routed-traffic delta), if any."""
        service = self.service
        routed = service.router.routed
        n = len(routed)
        if len(self._routed_snapshot) < n:
            self._routed_snapshot.extend(
                [0] * (n - len(self._routed_snapshot))
            )
        delta = [
            int(routed[i]) - self._routed_snapshot[i] for i in range(n)
        ]
        self._routed_snapshot = [int(c) for c in routed]
        total = sum(delta)
        if total < self.MIN_WINDOW_PER_SHARD * n:
            return None
        donor = max(range(n), key=lambda i: delta[i])
        if delta[donor] > service.split_threshold * (total / n):
            return donor
        return None

    # -------------------------------------------------------------- stats

    def stats(self) -> Dict[str, int]:
        return {
            "crashes_seen": self.crashes_seen,
            "stalls_detected": self.stalls_detected,
            "restarts": self.restarts,
            "reconciled_tickets": self.reconciled_tickets,
            "promotions_applied": self.promotions_applied,
            "splits_triggered": self.splits_triggered,
            "relearns_applied": self.relearns_applied,
        }


__all__ = ["Supervisor"]
