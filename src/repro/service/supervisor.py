"""The supervisor: restart crashed workers, unstick stalled ones,
reconcile tickets that fell out of the pipeline.

The supervisor runs at the *start* of every ``Service.pump`` — before
any worker serves — so a ticket recovered from a crash, a dropped
batch, or a lost queue slot is re-enqueued at the *front* of its shard
queue before any later-admitted operation on the same key can be
served.  That ordering is what keeps the admission-time oracle of the
differential harness (and the per-key FIFO contract of PR 4) sound
under faults.

Recovery sources of truth, in order:

* the per-shard :class:`~repro.service.journal.ShardJournal` — every
  acknowledged mutation, replayed into a fresh structure on restart;
* the worker's inflight registry — tickets popped from the queue but
  never answered (crash or injected drop) are requeued, in
  ``request_id`` order, ahead of everything still queued;
* pump-count heartbeats — a worker whose queue is non-empty but whose
  ``processed`` counter stagnates for ``stall_threshold`` consecutive
  service pumps is declared stalled and restarted the same way.
"""

from __future__ import annotations

from typing import Dict, List


class Supervisor:
    """Pump-clocked babysitter for a service's worker fleet."""

    def __init__(self, service, stall_threshold: int = 3):
        if stall_threshold < 1:
            raise ValueError(
                f"stall_threshold must be >= 1, got {stall_threshold}"
            )
        self.service = service
        self.stall_threshold = stall_threshold
        n = service.num_shards
        self._last_processed: List[int] = [0] * n
        self._stagnant: List[int] = [0] * n
        self.crashes_seen = 0
        self.stalls_detected = 0
        self.restarts = 0
        self.reconciled_tickets = 0

    # ---------------------------------------------------------- lifecycle

    def note_crash(self, worker) -> None:
        """A worker raised mid-batch this pump; restart happens at the
        start of the next pump, before anything else is served."""
        self.crashes_seen += 1

    def observe(self, pump_index: int) -> None:
        """One supervision pass; runs before the workers pump."""
        for worker, breaker in zip(self.service.workers,
                                   self.service.breakers):
            shard = worker.shard_id
            if worker.crashed:
                self._restart(worker, breaker)
                continue
            # Tickets that left the queue but never got an answer
            # (dropped batch, lost queue slot) go back to the front.
            lost = worker.reconcile()
            if lost:
                self.reconciled_tickets += len(lost)
                worker.requeue_front(lost)
            # Heartbeat: queued work + a frozen processed counter for
            # stall_threshold straight pumps means the worker is stuck.
            if worker.queue and worker.processed == self._last_processed[shard]:
                self._stagnant[shard] += 1
                if self._stagnant[shard] >= self.stall_threshold:
                    self.stalls_detected += 1
                    self._restart(worker, breaker)
            else:
                self._stagnant[shard] = 0
            self._last_processed[shard] = worker.processed

    def _restart(self, worker, breaker) -> None:
        """Fresh structure + journal replay + inflight reconciliation."""
        lost = worker.restart()
        # The new structure gets the same fault wiring the old one had
        # (injection hooks live on the engine, which was just rebuilt).
        self.service._arm_worker(worker)
        if not breaker.closed:
            # The shard is still quarantined: the rebuilt structure must
            # serve full-key until the breaker's probe says otherwise.
            worker.fall_back()
        if lost:
            self.reconciled_tickets += len(lost)
            worker.requeue_front(lost)
        self.restarts += 1
        shard = worker.shard_id
        self._stagnant[shard] = 0
        self._last_processed[shard] = worker.processed

    # -------------------------------------------------------------- stats

    def stats(self) -> Dict[str, int]:
        return {
            "crashes_seen": self.crashes_seen,
            "stalls_detected": self.stalls_detected,
            "restarts": self.restarts,
            "reconciled_tickets": self.reconciled_tickets,
        }


__all__ = ["Supervisor"]
