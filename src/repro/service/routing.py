"""The versioned routing table: base hash + hot-key overlay + split map.

Until PR 7 the key→shard map *was* the learned hasher, pinned for the
service's lifetime — adapting to skew was impossible by construction.
A :class:`RoutingTable` keeps the base hasher pinned (its 64-bit hash
stream changes only through an explicit :meth:`~RoutingTable.
with_engine` plan swap, which migrates every resident key it moves)
and layers two versioned refinements on top, stamped by a
monotonically increasing ``generation``:

* **hot-key overlay** — an explicit ``key -> shard`` dict consulted
  first.  The heavy hitters a :class:`~repro.service.hotkeys.
  HotKeyTracker` detects are pinned to deliberately chosen shards
  (least projected load), which is what restores the relative-balance
  bound under zipfian traffic: the bound assumes no single key carries
  a macroscopic share of the stream, and the overlay places exactly
  those keys by hand instead of by hash.
* **split map** — extendible-hashing-style per-base-shard directories
  for live shard splits.  Splitting shard ``d`` doubles ``d``'s
  directory and points the new low-bit half at the new shard; keys
  whose base hash lands on ``d`` then sub-route through untouched low
  bits of the *same* 64-bit hash, so a split only ever moves keys away
  from the donor — every other shard's keys are provably untouched.

Tables are copy-on-write: mutating operations (:meth:`with_overlay`,
:meth:`with_split`) return a *candidate* table at ``generation + 1``
and leave the live table alone.  The service migrates acked state under
the candidate's routing, then atomically installs it — the flip — so a
route lookup never observes a half-applied reconfiguration.  Routing
itself stays pure (no counters, no fault hooks); the
:class:`~repro.service.router.ShardRouter` facade owns observation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.engine import FastRangeReducer, HashEngine

# Directories cap at 2^MAX_SPLIT_DEPTH slots per base shard; past that
# a base range has been split 8 times and further splits are refused.
MAX_SPLIT_DEPTH = 8


class RoutingTable:
    """Generation-stamped composite route: overlay, then base + splits."""

    def __init__(self, engine: HashEngine, base_shards: int):
        if base_shards < 1:
            raise ValueError(f"need at least one shard, got {base_shards}")
        self.engine = engine
        self.base_shards = base_shards
        self.num_shards = base_shards
        self.generation = 0
        # Heavy hitters routed by hand: consulted before the hash.
        self.overlay: Dict[bytes, int] = {}
        # base shard -> directory (power-of-two list of shard ids);
        # absent means the base range was never split.
        self.split_dirs: Dict[int, List[int]] = {}
        self._base_reducer = FastRangeReducer(base_shards)

    # ------------------------------------------------------------ routing

    def route_batch(self, keys: Sequence[bytes]) -> np.ndarray:
        """Shard id per key; pure (no counters, no side effects)."""
        if not keys:
            return np.zeros(0, dtype=np.int64)
        hashes = self.engine.hash_batch(list(keys))
        shards = np.asarray(
            self._base_reducer.apply(hashes), dtype=np.int64
        )
        if self.split_dirs:
            for base, directory in self.split_dirs.items():
                mask = shards == base
                if not mask.any():
                    continue
                # Sub-route through low bits of the same hash: fastrange
                # consumed the high bits, so the low bits are fresh.
                sub = hashes[mask] & np.uint64(len(directory) - 1)
                lookup = np.asarray(directory, dtype=np.int64)
                shards[mask] = lookup[sub.astype(np.int64)]
        if self.overlay:
            for i, key in enumerate(keys):
                pinned = self.overlay.get(key)
                if pinned is not None:
                    shards[i] = pinned
        return shards

    def route_one(self, key: bytes) -> int:
        pinned = self.overlay.get(key)
        if pinned is not None:
            return pinned
        h = int(self.engine.hash_one(key))
        shard = self._base_reducer.apply_one(h)
        directory = self.split_dirs.get(shard)
        if directory is not None:
            shard = directory[h & (len(directory) - 1)]
        return int(shard)

    # -------------------------------------------------- candidate builders

    def clone(self) -> "RoutingTable":
        twin = RoutingTable.__new__(RoutingTable)
        twin.engine = self.engine
        twin.base_shards = self.base_shards
        twin.num_shards = self.num_shards
        twin.generation = self.generation
        twin.overlay = dict(self.overlay)
        twin.split_dirs = {b: list(d) for b, d in self.split_dirs.items()}
        twin._base_reducer = self._base_reducer
        return twin

    def with_overlay(self, assignments: Dict[bytes, int]) -> "RoutingTable":
        """Candidate table with hot keys pinned; generation + 1."""
        for key, shard in assignments.items():
            if not 0 <= shard < self.num_shards:
                raise ValueError(
                    f"overlay target {shard} out of range "
                    f"[0, {self.num_shards})"
                )
        candidate = self.clone()
        candidate.overlay.update(assignments)
        candidate.generation = self.generation + 1
        return candidate

    def with_engine(self, engine: HashEngine) -> "RoutingTable":
        """Candidate table hashing with a re-learned engine; generation + 1.

        The plan-swap counterpart of :meth:`with_overlay` /
        :meth:`with_split`: every refinement survives (overlay pins are
        explicit key -> shard routes; split directories sub-route
        whatever the new base hash lands on them), but the 64-bit base
        stream itself is re-based on the new plan.  Unlike overlays and
        splits — which move only the keys they name — a re-based stream
        can move *any* key anywhere, so the caller must migrate every
        resident key whose route changes before installing.
        """
        candidate = self.clone()
        candidate.engine = engine
        candidate.generation = self.generation + 1
        return candidate

    def with_split(self, donor: int) -> "RoutingTable":
        """Candidate table that splits ``donor``'s key range in half.

        The new shard always gets id ``num_shards`` (ids are dense and
        never reused).  Keys move from the donor to the new shard only —
        the base hash is untouched, so the migration predicate is simply
        ``candidate.route(key) == new_shard``.
        """
        if not 0 <= donor < self.num_shards:
            raise ValueError(
                f"donor {donor} out of range [0, {self.num_shards})"
            )
        base = self._base_of(donor)
        directory = self.split_dirs.get(base, [base])
        if len(directory) >= (1 << MAX_SPLIT_DEPTH):
            raise ValueError(
                f"base shard {base} already split {MAX_SPLIT_DEPTH} times"
            )
        candidate = self.clone()
        new_shard = candidate.num_shards
        # Extendible doubling: slot i and slot i + old_len differ only in
        # the new low bit.  Slots that pointed at the donor keep it on
        # bit 0 and hand bit 1 to the new shard; everything else is
        # duplicated unchanged.
        doubled = directory + list(directory)
        for i in range(len(directory)):
            if doubled[i] == donor:
                doubled[i + len(directory)] = new_shard
        candidate.split_dirs[base] = doubled
        candidate.num_shards += 1
        candidate.generation = self.generation + 1
        return candidate

    def _base_of(self, shard: int) -> int:
        """The base shard whose directory owns ``shard``."""
        if shard < self.base_shards:
            return shard
        for base, directory in self.split_dirs.items():
            if shard in directory:
                return base
        raise ValueError(f"shard {shard} is not in any split directory")

    # -------------------------------------------------------------- stats

    def stats(self) -> Dict[str, object]:
        return {
            "generation": self.generation,
            "base_shards": self.base_shards,
            "num_shards": self.num_shards,
            "overlay_keys": len(self.overlay),
            "split_directories": {
                str(base): list(directory)
                for base, directory in sorted(self.split_dirs.items())
            },
        }

    def __repr__(self) -> str:
        return (f"RoutingTable(gen={self.generation}, "
                f"shards={self.num_shards}/{self.base_shards} base, "
                f"overlay={len(self.overlay)}, "
                f"splits={len(self.split_dirs)})")


__all__ = ["RoutingTable", "MAX_SPLIT_DEPTH"]
