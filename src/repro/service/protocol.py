"""Typed request/response protocol for the serving layer.

The protocol is deliberately tiny — five operations, three statuses —
and every field is JSON-safe, so a request log can be replayed and a
response can be serialized straight onto a wire later without a schema
change.  Submitting a request returns a :class:`Ticket` immediately;
the response materializes on the ticket when the owning shard drains
its queue (or synchronously, for rejections and ``stats``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# The complete operation vocabulary.  ``stats`` is answered by the
# service front door; the rest are routed to a shard.  ``similar`` is
# served by the similarity backend only: the request key names the
# item, the value carries the neighbor count k as ASCII decimal.
OPS = ("get", "put", "delete", "contains", "similar", "stats")

# Response statuses.
OK = "ok"
REJECTED = "rejected"      # backpressure: queue full, retry later
FAILED = "failed"          # the shard could not serve it (unsupported op)
# The routing generation flipped between admission and dispatch and the
# key now routes elsewhere: resubmit (the client does so transparently).
WRONG_GENERATION = "wrong_generation"


@dataclass(frozen=True)
class Request:
    """One operation against the service."""

    op: str
    key: bytes = b""
    value: bytes = b""

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r}; choose from {OPS}")


@dataclass
class Response:
    """The outcome of one request.

    ``retry_after`` is only set on rejections: the number of service
    pumps after which the queue is guaranteed to have drained enough to
    accept the retry (explicit backpressure, never silent queuing).
    """

    status: str
    value: Optional[bytes] = None
    found: Optional[bool] = None
    shard: Optional[int] = None
    retry_after: Optional[int] = None
    error: Optional[str] = None
    stats: Optional[Dict[str, object]] = None
    # Set on WRONG_GENERATION: the routing generation now live, so a
    # client can tell a fresh miss from a stale retry loop.
    generation: Optional[int] = None
    # Set on OK answers to ``similar``: the top-k neighbors as
    # (item key, estimated Jaccard) pairs, best first.  ``found``
    # distinguishes an unknown query key (False, empty list) from a
    # known key with no neighbors (True, empty list).
    neighbors: Optional[List[Tuple[bytes, float]]] = None

    @property
    def ok(self) -> bool:
        return self.status == OK


@dataclass
class Ticket:
    """Handle for a submitted request; ``response`` fills in on drain."""

    request: Request
    request_id: int
    shard: Optional[int] = None
    response: Optional[Response] = field(default=None)
    # Routing generation at admission time.  The dispatch path uses it
    # as a safety net: a ticket stamped under generation N whose key no
    # longer routes to its queued shard is answered WRONG_GENERATION
    # instead of being served against the wrong shard's state.
    generation: int = 0

    @property
    def done(self) -> bool:
        return self.response is not None

    @property
    def rejected(self) -> bool:
        return self.response is not None and self.response.status == REJECTED


__all__ = [
    "OPS", "OK", "REJECTED", "FAILED", "WRONG_GENERATION",
    "Request", "Response", "Ticket",
]
