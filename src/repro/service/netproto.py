"""Wire protocol for the network front door: length-prefixed JSON.

One frame is a 4-byte big-endian length followed by exactly that many
bytes of UTF-8 JSON — the simplest framing that survives TCP's stream
semantics without a parser state machine.  The JSON payload maps 1:1
onto the typed in-process protocol (:mod:`repro.service.protocol`):
a request frame carries ``{"id", "op", "key", "value"}`` and a
response frame carries ``{"id", "status", ...}`` with the same fields
:class:`~repro.service.protocol.Response` has.  Keys and values are
arbitrary bytes, so they cross the wire base64-encoded; everything
else is already JSON-safe by the protocol's design.

Frame ids are assigned by the client and echoed by the server.  They
exist because the front door answers a frame when its *ticket*
resolves, and tickets on different shards resolve in shard order — so
responses on one connection may come back out of submission order and
the client must match them by id.

Two statuses exist only on the wire, on top of the service's own
``ok`` / ``rejected`` / ``failed`` / ``wrong_generation``:

* ``draining`` — the server is in graceful shutdown; in-flight
  requests still complete, new ones are turned away.
* ``bad_request`` — the frame was structurally broken (unknown op,
  undecodable key); nothing was admitted.

``wrong_generation`` is listed for completeness but a well-behaved
front door never sends it: routing flips are resubmitted server-side,
transparently (see :mod:`repro.service.frontdoor`).
"""

from __future__ import annotations

import base64
import json
import struct
from typing import Dict, Iterator, Optional

from repro.service.protocol import OPS, Request, Response

# Wire-only statuses (the rest come from repro.service.protocol).
DRAINING = "draining"
BAD_REQUEST = "bad_request"

# A frame larger than this is a protocol violation, not a big request:
# keys and values are bounded far below it, and without a ceiling one
# malformed length prefix would make the server buffer 4 GiB.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")


class ProtocolError(ValueError):
    """A frame violated the wire protocol (length, JSON, or schema)."""


def _b64(data: Optional[bytes]) -> Optional[str]:
    if data is None:
        return None
    return base64.b64encode(data).decode("ascii")


def _unb64(text: Optional[str], field: str) -> Optional[bytes]:
    if text is None:
        return None
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, AttributeError) as exc:
        raise ProtocolError(f"field {field!r} is not valid base64") from exc


def encode_frame(payload: Dict[str, object]) -> bytes:
    """Serialize one JSON payload into a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling"
        )
    return _LENGTH.pack(len(body)) + body


def decode_payload(body: bytes) -> Dict[str, object]:
    """Parse one frame body back into its JSON payload."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


class FrameDecoder:
    """Incremental frame parser: feed raw bytes, iterate payloads.

    TCP hands the receiver arbitrary chunk boundaries; this class owns
    the reassembly buffer so both the asyncio server and the blocking
    client share one tested implementation.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES):
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[Dict[str, object]]:
        """Absorb ``data``; yield every payload it completes."""
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LENGTH.size:
                return
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > self.max_frame:
                raise ProtocolError(
                    f"declared frame length {length} exceeds the "
                    f"{self.max_frame}-byte ceiling"
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return
            body = bytes(self._buffer[_LENGTH.size:end])
            del self._buffer[:end]
            yield decode_payload(body)

    @property
    def buffered(self) -> int:
        return len(self._buffer)


# ------------------------------------------------------------ requests


def encode_request(frame_id: int, request: Request) -> bytes:
    """One request frame: the typed Request plus a client-chosen id."""
    payload: Dict[str, object] = {"id": int(frame_id), "op": request.op}
    if request.key:
        payload["key"] = _b64(request.key)
    if request.value:
        payload["value"] = _b64(request.value)
    return encode_frame(payload)


def decode_request(payload: Dict[str, object]) -> Request:
    """Build the typed Request a request payload describes.

    Raises :class:`ProtocolError` on schema violations, so the server
    can answer ``bad_request`` instead of tearing the connection down.
    """
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; choose from {OPS}")
    key = _unb64(payload.get("key"), "key") or b""
    value = _unb64(payload.get("value"), "value") or b""
    return Request(str(op), key, value)


def frame_id_of(payload: Dict[str, object]) -> int:
    frame_id = payload.get("id")
    if not isinstance(frame_id, int) or isinstance(frame_id, bool):
        raise ProtocolError(f"frame id {frame_id!r} is not an integer")
    return frame_id


# ----------------------------------------------------------- responses


def encode_response(frame_id: int, response: Response) -> bytes:
    """One response frame: the typed Response keyed by the echoed id."""
    payload: Dict[str, object] = {
        "id": int(frame_id), "status": response.status,
    }
    if response.value is not None:
        payload["value"] = _b64(response.value)
    if response.neighbors is not None:
        # Neighbor keys are arbitrary bytes, so each pair crosses the
        # wire as [base64 key, score] — the one nested-bytes field the
        # generic loop below cannot handle.
        payload["neighbors"] = [
            [_b64(key), float(score)] for key, score in response.neighbors
        ]
    for field in ("found", "shard", "retry_after", "error", "stats",
                  "generation"):
        attr = getattr(response, field)
        if attr is not None:
            payload[field] = attr
    return encode_frame(payload)


def encode_status(frame_id: int, status: str,
                  error: Optional[str] = None,
                  retry_after: Optional[int] = None) -> bytes:
    """A bare wire-status frame (``draining`` / ``bad_request``)."""
    payload: Dict[str, object] = {"id": int(frame_id), "status": status}
    if error is not None:
        payload["error"] = error
    if retry_after is not None:
        payload["retry_after"] = int(retry_after)
    return encode_frame(payload)


def decode_response(payload: Dict[str, object]) -> Response:
    """Rebuild the typed Response a response payload describes."""
    status = payload.get("status")
    if not isinstance(status, str) or not status:
        raise ProtocolError("response frame carries no status")
    neighbors = payload.get("neighbors")
    if neighbors is not None:
        if not isinstance(neighbors, list):
            raise ProtocolError("field 'neighbors' must be a list")
        try:
            neighbors = [
                (_unb64(str(key), "neighbors"), float(score))
                for key, score in neighbors
            ]
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                "field 'neighbors' must be [base64, number] pairs"
            ) from exc
    return Response(
        status,
        value=_unb64(payload.get("value"), "value"),
        found=payload.get("found"),
        shard=payload.get("shard"),
        retry_after=payload.get("retry_after"),
        error=payload.get("error"),
        stats=payload.get("stats"),
        generation=payload.get("generation"),
        neighbors=neighbors,
    )


__all__ = [
    "BAD_REQUEST",
    "DRAINING",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "decode_payload",
    "decode_request",
    "decode_response",
    "encode_frame",
    "encode_request",
    "encode_response",
    "encode_status",
    "frame_id_of",
]
