"""In-process client: blocking calls and batched multi-ops.

The client turns the ticket-based service protocol into plain method
calls, and is the layer where *bounded waiting* lives: a rejected
submit backs off exponentially (with seeded jitter) under a total pump
budget before raising :class:`ServiceOverloadedError`, and completing a
ticket pumps at most ``deadline_pumps`` times before the client marks
the ticket failed, cancels it at its shard, and raises
:class:`DeadlineExceededError` — no call can spin forever, even when a
fault plane is stalling workers underneath.  The client also keeps the
ack ledger the acceptance criteria care about — ``puts_accepted`` vs
``puts_acked`` — so a load generator can assert zero lost acknowledged
writes after a run.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro._util import as_bytes

from repro.service import netproto
from repro.service.protocol import (
    FAILED,
    REJECTED,
    WRONG_GENERATION,
    Request,
    Response,
    Ticket,
)
from repro.service.service import Service

# Per-attempt backoff ceiling: however deep the rejecting queue's
# retry_after hint, a single backoff attempt never spends more than
# this many pumps (in-process) or the equivalent sleep (network)
# before re-checking admission.  The total spend across attempts is
# bounded separately by the submit pump budget / retry cap.
BACKOFF_CAP_PUMPS = 64


class ServiceOverloadedError(RuntimeError):
    """A submit was still rejected after every retry and backoff pump."""


class ServiceDrainingError(RuntimeError):
    """The front door is shutting down; the request was turned away.

    Only the network path raises this: in-flight requests still
    complete during a drain, so a ``draining`` answer means the
    request was never admitted — a negative acknowledgement."""


class NetworkRequestError(RuntimeError):
    """The server answered ``bad_request`` — a client-side frame bug."""


class DeadlineExceededError(RuntimeError):
    """A ticket's response did not arrive within the pump deadline.

    The client cancels the ticket at its shard before raising, so the
    operation is guaranteed *not* to be applied later: a deadline
    failure is a negative acknowledgement, not an open question.
    """


class ServiceClient:
    """Synchronous facade over an in-process :class:`Service`."""

    def __init__(
        self,
        service: Service,
        max_retries: int = 64,
        deadline_pumps: int = 1024,
        submit_pump_budget: int = 4096,
        jitter_seed: int = 0xC11E,
    ):
        self.service = service
        self.max_retries = max_retries
        self.deadline_pumps = deadline_pumps
        self.submit_pump_budget = submit_pump_budget
        self._rng = random.Random(jitter_seed)
        self.retries = 0
        self.backoff_pumps = 0
        self.deadline_failures = 0
        self.generation_retries = 0
        self.puts_accepted = 0
        self.puts_responded = 0
        self.puts_acked = 0

    # ----------------------------------------------------------- plumbing

    def _submit(self, request: Request,
                rejected: Optional[Ticket] = None) -> Ticket:
        """Admit one request, backing off under explicit backpressure.

        ``rejected`` carries a rejection the caller already received
        for this request (the batch-admission fast path): the retry
        walk then starts from that rejection's backoff hint instead of
        immediately re-submitting into the same full queue — which
        would burn a retry that is all but guaranteed to re-reject and
        double-count the backpressure event in both the client's
        ``retries`` and the service's rejection ledger.
        """
        spent = 0
        ticket = rejected
        for attempt in range(self.max_retries + 1):
            if ticket is None:
                ticket = self.service.submit(request)
                if not ticket.rejected:
                    if request.op == "put":
                        self.puts_accepted += 1
                    return ticket
                self.retries += 1
            if spent >= self.submit_pump_budget:
                break
            # Exponential backoff over the explicit backpressure hint,
            # with full seeded jitter.  A falsy hint is handled
            # explicitly rather than promoted: None (no hint at all)
            # defaults to one pump, but an explicit ``retry_after=0``
            # means "retry immediately" and spends nothing.  Every
            # attempt's spend is capped at BACKOFF_CAP_PUMPS and the
            # total is bounded by the budget, no matter how long the
            # service stays saturated.
            hint = ticket.response.retry_after
            hint = 1 if hint is None else max(0, int(hint))
            ceiling = min(
                hint << min(attempt, 6),
                BACKOFF_CAP_PUMPS,
                self.submit_pump_budget - spent,
            )
            pumps = self._rng.randint(1, ceiling) if ceiling >= 1 else 0
            for _ in range(pumps):
                self.service.pump()
            spent += pumps
            self.backoff_pumps += pumps
            ticket = None  # resubmit on the next pass
        raise ServiceOverloadedError(
            f"submit rejected {self.retries} times, {spent} backoff pumps "
            f"spent (shard {ticket.shard if ticket is not None else '?'})"
        )

    def _complete(self, ticket: Ticket) -> Response:
        pumps = 0
        resubmits = 0
        while True:
            while ticket.response is None:
                if pumps >= self.deadline_pumps:
                    # Mark the ticket failed *before* cancelling so the
                    # supervisor's reconciliation can never resurrect it.
                    ticket.response = Response(
                        FAILED, shard=ticket.shard, error="deadline exceeded"
                    )
                    self.service.cancel(ticket)
                    self.deadline_failures += 1
                    if ticket.request.op == "put":
                        self.puts_responded += 1  # negative ack, not lost
                    raise DeadlineExceededError(
                        f"request {ticket.request_id} ({ticket.request.op}) "
                        f"unanswered after {pumps} pumps "
                        f"(shard {ticket.shard})"
                    )
                self.service.pump()
                pumps += 1
            if (ticket.response.status == WRONG_GENERATION
                    and resubmits < self.max_retries):
                # A routing flip moved the key between admission and
                # dispatch; the answer is "ask again", not a failure.
                # The resubmit routes through the *current* table, so
                # this converges unless flips outpace the retry cap.
                # Ledger-wise the old ticket was answered (negatively)
                # and the resubmit is a fresh accepted put.
                if ticket.request.op == "put":
                    self.puts_responded += 1
                self.generation_retries += 1
                resubmits += 1
                ticket = self._submit(ticket.request)
                continue
            break
        if ticket.request.op == "put":
            self.puts_responded += 1
            if ticket.response.ok:
                self.puts_acked += 1
        return ticket.response

    def _submit_many(self, requests: Sequence[Request]) -> List[Ticket]:
        """Admit a whole batch through one vectorized routing pass.

        Rejected tickets walk the scalar retry/backoff path one by one;
        accepted ones keep the same ledger bookkeeping as
        :meth:`_submit`.  Callers must only use this when admission
        order between the batch's requests does not matter per key
        (distinct keys, or read-only ops) — a rejected request is
        re-admitted *after* its batch siblings.
        """
        tickets = list(self.service.submit_batch(requests))
        out: List[Ticket] = []
        for request, ticket in zip(requests, tickets):
            if ticket.rejected:
                # One backpressure event, counted once: hand the
                # rejection to the scalar walk so it backs off on this
                # hint first instead of re-submitting immediately (and
                # double-counting the event in retries/rejections).
                self.retries += 1
                ticket = self._submit(request, rejected=ticket)
            elif request.op == "put":
                self.puts_accepted += 1
            out.append(ticket)
        return out

    def _complete_all(self, tickets: Sequence[Ticket]) -> List[Response]:
        self.service.drain()
        return [self._complete(ticket) for ticket in tickets]

    # ------------------------------------------------------------ scalar

    def get(self, key) -> Optional[bytes]:
        response = self._complete(self._submit(Request("get", as_bytes(key))))
        return response.value

    def put(self, key, value) -> Response:
        return self._complete(
            self._submit(Request("put", as_bytes(key), as_bytes(value)))
        )

    def delete(self, key) -> Response:
        return self._complete(self._submit(Request("delete", as_bytes(key))))

    def contains(self, key) -> bool:
        response = self._complete(
            self._submit(Request("contains", as_bytes(key)))
        )
        return bool(response.found)

    def stats(self) -> Dict[str, object]:
        return self._complete(self._submit(Request("stats"))).stats

    def similar(self, key, k: int = 10) -> List[Tuple[bytes, float]]:
        """Top-k neighbors of a stored item on the similarity backend.

        Returns ``(neighbor key, estimated Jaccard)`` pairs, best
        first; empty when the key is unknown to its shard.
        """
        response = self._complete(self._submit(
            Request("similar", as_bytes(key), str(int(k)).encode("ascii"))
        ))
        return list(response.neighbors or ())

    # ------------------------------------------------------------- batch

    def put_many(self, pairs: Iterable[Tuple[object, object]]) -> List[Response]:
        """Submit many puts before pumping: fills the shard queues so the
        workers see real micro-batches instead of singletons.

        Distinct-key batches admit through one vectorized routing pass;
        a batch that writes the same key twice takes the scalar path,
        because a rejected-then-retried first write must not land after
        an accepted second write to the same key.
        """
        items = [(as_bytes(k), as_bytes(v)) for k, v in pairs]
        keys = [k for k, _ in items]
        requests = [Request("put", k, v) for k, v in items]
        if len(set(keys)) == len(keys):
            tickets = self._submit_many(requests)
        else:
            tickets = [self._submit(request) for request in requests]
        return self._complete_all(tickets)

    def multi_get(self, keys: Sequence[object]) -> List[Optional[bytes]]:
        # Reads never conflict with each other, so the vectorized
        # admission path is safe even with duplicate keys.
        tickets = self._submit_many(
            [Request("get", as_bytes(k)) for k in keys]
        )
        return [r.value for r in self._complete_all(tickets)]

    def contains_many(self, keys: Sequence[object]) -> List[bool]:
        tickets = self._submit_many(
            [Request("contains", as_bytes(k)) for k in keys]
        )
        return [bool(r.found) for r in self._complete_all(tickets)]

    def similar_many(
        self, keys: Sequence[object], k: int = 10
    ) -> List[List[Tuple[bytes, float]]]:
        # Read-only, so the vectorized admission path is safe even
        # with duplicate query keys.
        payload = str(int(k)).encode("ascii")
        tickets = self._submit_many(
            [Request("similar", as_bytes(key), payload) for key in keys]
        )
        return [list(r.neighbors or ()) for r in self._complete_all(tickets)]

    @property
    def lost_acks(self) -> int:
        """Accepted puts whose response never arrived (must stay 0).

        An explicit FAILED response (e.g. a full cuckoo shard) is a
        *negative* ack, not a lost one; ``puts_acked`` counts the OKs.
        """
        return self.puts_accepted - self.puts_responded


class NetworkClient:
    """Blocking socket client for the front door — same surface as
    :class:`ServiceClient`, but over TCP.

    The wire protocol resolves responses out of submission order (a
    ticket answers when its *shard* serves it), so the client keys
    every frame by a client-assigned id and :meth:`_collect` stashes
    whatever else arrives while waiting.  Backpressure statuses are
    handled the way the in-process client handles rejected tickets —
    jittered exponential backoff with an explicit-zero hint meaning
    "retry immediately" — except the wait is wall-clock sleep instead
    of cooperative pumps, because the server pumps for itself.

    The ack ledger mirrors :class:`ServiceClient`: ``puts_sent`` counts
    logical puts once at first wire send, ``puts_responded`` counts
    terminal answers *including negative ones* (FAILED, draining,
    overload give-up), and ``puts_acked`` counts OKs — so
    :attr:`lost_acks` is still "puts the server owes an answer for".
    """

    def __init__(
        self,
        host: str,
        port: int,
        max_retries: int = 64,
        timeout_s: float = 30.0,
        pump_interval_s: float = 0.0002,
        backoff_cap_s: float = 0.05,
        pipeline_window: int = 512,
        jitter_seed: int = 0xBEEF,
        max_frame: int = netproto.MAX_FRAME_BYTES,
    ):
        self.max_retries = max_retries
        self.pump_interval_s = pump_interval_s
        self.backoff_cap_s = backoff_cap_s
        self.pipeline_window = pipeline_window
        self._rng = random.Random(jitter_seed)
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = netproto.FrameDecoder(max_frame)
        self._responses: Dict[int, Response] = {}
        self._next_id = 0
        self.retries = 0
        self.backoff_s = 0.0
        self.generation_retries = 0
        self.puts_sent = 0
        self.puts_responded = 0
        self.puts_acked = 0

    # ----------------------------------------------------------- plumbing

    def _send(self, request: Request) -> int:
        frame_id = self._next_id
        self._next_id += 1
        self._sock.sendall(netproto.encode_request(frame_id, request))
        return frame_id

    def _collect(self, frame_id: int) -> Response:
        while frame_id not in self._responses:
            data = self._sock.recv(1 << 16)
            if not data:
                raise ConnectionError(
                    "server closed the connection mid-request"
                )
            for payload in self._decoder.feed(data):
                self._responses[netproto.frame_id_of(payload)] = (
                    netproto.decode_response(payload)
                )
        return self._responses.pop(frame_id)

    def _backoff(self, attempt: int, hint: Optional[int]) -> None:
        # Same falsy-hint policy as ServiceClient._submit: a missing
        # hint defaults to one pump-interval, an explicit 0 sleeps not
        # at all, and the per-attempt ceiling is capped regardless of
        # how deep the rejecting queue claims to be.
        hint = 1 if hint is None else max(0, int(hint))
        ceiling = min(
            hint * self.pump_interval_s * (1 << min(attempt, 6)),
            self.backoff_cap_s,
        )
        if ceiling <= 0:
            return
        delay = self._rng.uniform(0, ceiling)
        self.backoff_s += delay
        time.sleep(delay)

    def _negative_ack(self, request: Request) -> None:
        if request.op == "put":
            self.puts_responded += 1

    def _settle(self, request: Request, response: Response) -> Response:
        """Walk one request to a terminal answer, retrying the two
        try-again statuses (``rejected`` with backoff, and
        ``wrong_generation`` as defense in depth — a well-behaved front
        door resubmits those server-side)."""
        attempt = 0
        flips = 0
        while True:
            status = response.status
            if status == REJECTED:
                if attempt >= self.max_retries:
                    self._negative_ack(request)
                    raise ServiceOverloadedError(
                        f"submit rejected {attempt + 1} times over the "
                        f"wire ({self.backoff_s:.3f}s backed off)"
                    )
                self.retries += 1
                self._backoff(attempt, response.retry_after)
                attempt += 1
            elif status == WRONG_GENERATION and flips < self.max_retries:
                self.generation_retries += 1
                flips += 1
            elif status == netproto.DRAINING:
                self._negative_ack(request)
                raise ServiceDrainingError(
                    response.error or "front door is draining"
                )
            elif status == netproto.BAD_REQUEST:
                self._negative_ack(request)
                raise NetworkRequestError(
                    response.error or "server rejected the frame"
                )
            else:
                # OK, FAILED, or a wrong-generation walk that ran out
                # of retries: terminal either way.
                if request.op == "put":
                    self.puts_responded += 1
                    if response.ok:
                        self.puts_acked += 1
                return response
            response = self._collect(self._send(request))

    def _terminal(self, request: Request) -> Response:
        if request.op == "put":
            self.puts_sent += 1
        return self._settle(request, self._collect(self._send(request)))

    def _terminal_many(self, requests: Sequence[Request]) -> List[Response]:
        """Pipelined round-trips: a whole window of frames goes out
        before the first response is read, so one connection still
        hands the front door real micro-batches to coalesce."""
        out: List[Response] = []
        for start in range(0, len(requests), self.pipeline_window):
            chunk = requests[start:start + self.pipeline_window]
            for request in chunk:
                if request.op == "put":
                    self.puts_sent += 1
            frame_ids = [self._send(request) for request in chunk]
            out.extend(
                self._settle(request, self._collect(frame_id))
                for request, frame_id in zip(chunk, frame_ids)
            )
        return out

    # ------------------------------------------------------------ scalar

    def get(self, key) -> Optional[bytes]:
        return self._terminal(Request("get", as_bytes(key))).value

    def put(self, key, value) -> Response:
        return self._terminal(
            Request("put", as_bytes(key), as_bytes(value))
        )

    def delete(self, key) -> Response:
        return self._terminal(Request("delete", as_bytes(key)))

    def contains(self, key) -> bool:
        return bool(self._terminal(Request("contains", as_bytes(key))).found)

    def stats(self) -> Dict[str, object]:
        """Scrape the /metrics verb: service stats + ``frontdoor``."""
        return self._terminal(Request("stats")).stats

    def similar(self, key, k: int = 10) -> List[Tuple[bytes, float]]:
        """Top-k neighbors over the wire (similarity backend only)."""
        response = self._terminal(
            Request("similar", as_bytes(key), str(int(k)).encode("ascii"))
        )
        return list(response.neighbors or ())

    # ------------------------------------------------------------- batch

    def put_many(self, pairs: Iterable[Tuple[object, object]]) -> List[Response]:
        items = [(as_bytes(k), as_bytes(v)) for k, v in pairs]
        keys = [k for k, _ in items]
        requests = [Request("put", k, v) for k, v in items]
        if len(set(keys)) == len(keys):
            return self._terminal_many(requests)
        # Same rule as the in-process client: duplicate keys must land
        # in submission order, and a rejected-then-retried first write
        # pipelined next to an accepted second write would not.
        return [self._terminal(request) for request in requests]

    def multi_get(self, keys: Sequence[object]) -> List[Optional[bytes]]:
        responses = self._terminal_many(
            [Request("get", as_bytes(k)) for k in keys]
        )
        return [r.value for r in responses]

    def contains_many(self, keys: Sequence[object]) -> List[bool]:
        responses = self._terminal_many(
            [Request("contains", as_bytes(k)) for k in keys]
        )
        return [bool(r.found) for r in responses]

    def similar_many(
        self, keys: Sequence[object], k: int = 10
    ) -> List[List[Tuple[bytes, float]]]:
        """Pipelined top-k queries: a whole window of ``similar``
        frames goes out before the first response is read."""
        payload = str(int(k)).encode("ascii")
        responses = self._terminal_many(
            [Request("similar", as_bytes(key), payload) for key in keys]
        )
        return [list(r.neighbors or ()) for r in responses]

    @property
    def lost_acks(self) -> int:
        """Puts sent whose terminal answer never arrived (must stay 0).

        Negative answers — FAILED, a drain turn-away, an overload
        give-up — count as responded: the server said *no*, it did not
        lose the write."""
        return self.puts_sent - self.puts_responded

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "NetworkClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def run_service_workload(client: ServiceClient, operations) -> Dict[str, int]:
    """Drive a service with a YCSB stream (see ``repro.workloads.ycsb``).

    Consecutive same-kind operations are dispatched through the client's
    batch entry points, mirroring how the workers themselves amortize
    hashing.  ``scan`` is not part of the service protocol (mix E).
    """
    counts: Dict[str, int] = {}
    kind_buffer: List = []
    buffered_kind = None

    def flush() -> None:
        nonlocal buffered_kind
        if not kind_buffer:
            return
        if buffered_kind == "read":
            client.multi_get([op.key for op in kind_buffer])
        else:
            client.put_many([(op.key, op.value) for op in kind_buffer])
        kind_buffer.clear()
        buffered_kind = None

    for op in operations:
        counts[op.kind] = counts.get(op.kind, 0) + 1
        if op.kind == "scan":
            raise ValueError(
                "the service protocol has no scan; use a mix without it"
            )
        if op.kind == "rmw":
            flush()
            current = client.get(op.key)
            client.put(op.key, (current or b"")[:8] + op.value)
            continue
        kind = "read" if op.kind == "read" else "write"
        if buffered_kind not in (None, kind):
            flush()
        buffered_kind = kind
        kind_buffer.append(op)
    flush()
    return counts


__all__ = [
    "BACKOFF_CAP_PUMPS",
    "DeadlineExceededError",
    "NetworkClient",
    "NetworkRequestError",
    "ServiceClient",
    "ServiceDrainingError",
    "ServiceOverloadedError",
    "run_service_workload",
]
