"""In-process client: blocking calls and batched multi-ops.

The client turns the ticket-based service protocol into plain method
calls, and is the layer where *bounded waiting* lives: a rejected
submit backs off exponentially (with seeded jitter) under a total pump
budget before raising :class:`ServiceOverloadedError`, and completing a
ticket pumps at most ``deadline_pumps`` times before the client marks
the ticket failed, cancels it at its shard, and raises
:class:`DeadlineExceededError` — no call can spin forever, even when a
fault plane is stalling workers underneath.  The client also keeps the
ack ledger the acceptance criteria care about — ``puts_accepted`` vs
``puts_acked`` — so a load generator can assert zero lost acknowledged
writes after a run.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro._util import as_bytes

from repro.service.protocol import (
    FAILED,
    WRONG_GENERATION,
    Request,
    Response,
    Ticket,
)
from repro.service.service import Service


class ServiceOverloadedError(RuntimeError):
    """A submit was still rejected after every retry and backoff pump."""


class DeadlineExceededError(RuntimeError):
    """A ticket's response did not arrive within the pump deadline.

    The client cancels the ticket at its shard before raising, so the
    operation is guaranteed *not* to be applied later: a deadline
    failure is a negative acknowledgement, not an open question.
    """


class ServiceClient:
    """Synchronous facade over an in-process :class:`Service`."""

    def __init__(
        self,
        service: Service,
        max_retries: int = 64,
        deadline_pumps: int = 1024,
        submit_pump_budget: int = 4096,
        jitter_seed: int = 0xC11E,
    ):
        self.service = service
        self.max_retries = max_retries
        self.deadline_pumps = deadline_pumps
        self.submit_pump_budget = submit_pump_budget
        self._rng = random.Random(jitter_seed)
        self.retries = 0
        self.backoff_pumps = 0
        self.deadline_failures = 0
        self.generation_retries = 0
        self.puts_accepted = 0
        self.puts_responded = 0
        self.puts_acked = 0

    # ----------------------------------------------------------- plumbing

    def _submit(self, request: Request) -> Ticket:
        spent = 0
        ticket = None
        for attempt in range(self.max_retries + 1):
            ticket = self.service.submit(request)
            if not ticket.rejected:
                if request.op == "put":
                    self.puts_accepted += 1
                return ticket
            self.retries += 1
            if spent >= self.submit_pump_budget:
                break
            # Exponential backoff over the explicit backpressure hint,
            # with full seeded jitter, capped by the remaining budget —
            # the total pump spend per submit is bounded no matter how
            # long the service stays saturated.
            hint = ticket.response.retry_after or 1
            ceiling = min(hint * (1 << min(attempt, 6)), 256)
            pumps = self._rng.randint(1, ceiling)
            pumps = min(pumps, self.submit_pump_budget - spent)
            for _ in range(pumps):
                self.service.pump()
            spent += pumps
            self.backoff_pumps += pumps
        raise ServiceOverloadedError(
            f"submit rejected {self.retries} times, {spent} backoff pumps "
            f"spent (shard {ticket.shard})"
        )

    def _complete(self, ticket: Ticket) -> Response:
        pumps = 0
        resubmits = 0
        while True:
            while ticket.response is None:
                if pumps >= self.deadline_pumps:
                    # Mark the ticket failed *before* cancelling so the
                    # supervisor's reconciliation can never resurrect it.
                    ticket.response = Response(
                        FAILED, shard=ticket.shard, error="deadline exceeded"
                    )
                    self.service.cancel(ticket)
                    self.deadline_failures += 1
                    if ticket.request.op == "put":
                        self.puts_responded += 1  # negative ack, not lost
                    raise DeadlineExceededError(
                        f"request {ticket.request_id} ({ticket.request.op}) "
                        f"unanswered after {pumps} pumps "
                        f"(shard {ticket.shard})"
                    )
                self.service.pump()
                pumps += 1
            if (ticket.response.status == WRONG_GENERATION
                    and resubmits < self.max_retries):
                # A routing flip moved the key between admission and
                # dispatch; the answer is "ask again", not a failure.
                # The resubmit routes through the *current* table, so
                # this converges unless flips outpace the retry cap.
                # Ledger-wise the old ticket was answered (negatively)
                # and the resubmit is a fresh accepted put.
                if ticket.request.op == "put":
                    self.puts_responded += 1
                self.generation_retries += 1
                resubmits += 1
                ticket = self._submit(ticket.request)
                continue
            break
        if ticket.request.op == "put":
            self.puts_responded += 1
            if ticket.response.ok:
                self.puts_acked += 1
        return ticket.response

    def _submit_many(self, requests: Sequence[Request]) -> List[Ticket]:
        """Admit a whole batch through one vectorized routing pass.

        Rejected tickets walk the scalar retry/backoff path one by one;
        accepted ones keep the same ledger bookkeeping as
        :meth:`_submit`.  Callers must only use this when admission
        order between the batch's requests does not matter per key
        (distinct keys, or read-only ops) — a rejected request is
        re-admitted *after* its batch siblings.
        """
        tickets = list(self.service.submit_batch(requests))
        out: List[Ticket] = []
        for request, ticket in zip(requests, tickets):
            if ticket.rejected:
                self.retries += 1
                ticket = self._submit(request)
            elif request.op == "put":
                self.puts_accepted += 1
            out.append(ticket)
        return out

    def _complete_all(self, tickets: Sequence[Ticket]) -> List[Response]:
        self.service.drain()
        return [self._complete(ticket) for ticket in tickets]

    # ------------------------------------------------------------ scalar

    def get(self, key) -> Optional[bytes]:
        response = self._complete(self._submit(Request("get", as_bytes(key))))
        return response.value

    def put(self, key, value) -> Response:
        return self._complete(
            self._submit(Request("put", as_bytes(key), as_bytes(value)))
        )

    def delete(self, key) -> Response:
        return self._complete(self._submit(Request("delete", as_bytes(key))))

    def contains(self, key) -> bool:
        response = self._complete(
            self._submit(Request("contains", as_bytes(key)))
        )
        return bool(response.found)

    def stats(self) -> Dict[str, object]:
        return self._complete(self._submit(Request("stats"))).stats

    # ------------------------------------------------------------- batch

    def put_many(self, pairs: Iterable[Tuple[object, object]]) -> List[Response]:
        """Submit many puts before pumping: fills the shard queues so the
        workers see real micro-batches instead of singletons.

        Distinct-key batches admit through one vectorized routing pass;
        a batch that writes the same key twice takes the scalar path,
        because a rejected-then-retried first write must not land after
        an accepted second write to the same key.
        """
        items = [(as_bytes(k), as_bytes(v)) for k, v in pairs]
        keys = [k for k, _ in items]
        requests = [Request("put", k, v) for k, v in items]
        if len(set(keys)) == len(keys):
            tickets = self._submit_many(requests)
        else:
            tickets = [self._submit(request) for request in requests]
        return self._complete_all(tickets)

    def multi_get(self, keys: Sequence[object]) -> List[Optional[bytes]]:
        # Reads never conflict with each other, so the vectorized
        # admission path is safe even with duplicate keys.
        tickets = self._submit_many(
            [Request("get", as_bytes(k)) for k in keys]
        )
        return [r.value for r in self._complete_all(tickets)]

    def contains_many(self, keys: Sequence[object]) -> List[bool]:
        tickets = self._submit_many(
            [Request("contains", as_bytes(k)) for k in keys]
        )
        return [bool(r.found) for r in self._complete_all(tickets)]

    @property
    def lost_acks(self) -> int:
        """Accepted puts whose response never arrived (must stay 0).

        An explicit FAILED response (e.g. a full cuckoo shard) is a
        *negative* ack, not a lost one; ``puts_acked`` counts the OKs.
        """
        return self.puts_accepted - self.puts_responded


def run_service_workload(client: ServiceClient, operations) -> Dict[str, int]:
    """Drive a service with a YCSB stream (see ``repro.workloads.ycsb``).

    Consecutive same-kind operations are dispatched through the client's
    batch entry points, mirroring how the workers themselves amortize
    hashing.  ``scan`` is not part of the service protocol (mix E).
    """
    counts: Dict[str, int] = {}
    kind_buffer: List = []
    buffered_kind = None

    def flush() -> None:
        nonlocal buffered_kind
        if not kind_buffer:
            return
        if buffered_kind == "read":
            client.multi_get([op.key for op in kind_buffer])
        else:
            client.put_many([(op.key, op.value) for op in kind_buffer])
        kind_buffer.clear()
        buffered_kind = None

    for op in operations:
        counts[op.kind] = counts.get(op.kind, 0) + 1
        if op.kind == "scan":
            raise ValueError(
                "the service protocol has no scan; use a mix without it"
            )
        if op.kind == "rmw":
            flush()
            current = client.get(op.key)
            client.put(op.key, (current or b"")[:8] + op.value)
            continue
        kind = "read" if op.kind == "read" else "write"
        if buffered_kind not in (None, kind):
            flush()
        buffered_kind = kind
        kind_buffer.append(op)
    flush()
    return counts


__all__ = [
    "DeadlineExceededError",
    "ServiceClient",
    "ServiceOverloadedError",
    "run_service_workload",
]
