"""In-process client: blocking calls and batched multi-ops.

The client turns the ticket-based service protocol into plain method
calls.  Backpressure is handled transparently: a rejected submit pumps
the service (making room) and retries, up to ``max_retries``.  The
client also keeps the ack ledger the acceptance criteria care about —
``puts_accepted`` vs ``puts_acked`` — so a load generator can assert
zero lost acknowledged writes after a run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro._util import as_bytes

from repro.service.protocol import Request, Response, Ticket
from repro.service.service import Service


class ServiceOverloadedError(RuntimeError):
    """A submit was rejected ``max_retries`` times in a row."""


class ServiceClient:
    """Synchronous facade over an in-process :class:`Service`."""

    def __init__(self, service: Service, max_retries: int = 64):
        self.service = service
        self.max_retries = max_retries
        self.retries = 0
        self.puts_accepted = 0
        self.puts_responded = 0
        self.puts_acked = 0

    # ----------------------------------------------------------- plumbing

    def _submit(self, request: Request) -> Ticket:
        for _ in range(self.max_retries + 1):
            ticket = self.service.submit(request)
            if not ticket.rejected:
                if request.op == "put":
                    self.puts_accepted += 1
                return ticket
            self.retries += 1
            # Honor the explicit backpressure hint: pump until the shard
            # has drained enough to guarantee admission.
            for _ in range(ticket.response.retry_after or 1):
                self.service.pump()
        raise ServiceOverloadedError(
            f"submit rejected {self.max_retries + 1} times "
            f"(shard {ticket.shard})"
        )

    def _complete(self, ticket: Ticket) -> Response:
        while ticket.response is None:
            self.service.pump()
        if ticket.request.op == "put":
            self.puts_responded += 1
            if ticket.response.ok:
                self.puts_acked += 1
        return ticket.response

    def _complete_all(self, tickets: Sequence[Ticket]) -> List[Response]:
        self.service.drain()
        return [self._complete(ticket) for ticket in tickets]

    # ------------------------------------------------------------ scalar

    def get(self, key) -> Optional[bytes]:
        response = self._complete(self._submit(Request("get", as_bytes(key))))
        return response.value

    def put(self, key, value) -> Response:
        return self._complete(
            self._submit(Request("put", as_bytes(key), as_bytes(value)))
        )

    def delete(self, key) -> Response:
        return self._complete(self._submit(Request("delete", as_bytes(key))))

    def contains(self, key) -> bool:
        response = self._complete(
            self._submit(Request("contains", as_bytes(key)))
        )
        return bool(response.found)

    def stats(self) -> Dict[str, object]:
        return self._complete(self._submit(Request("stats"))).stats

    # ------------------------------------------------------------- batch

    def put_many(self, pairs: Iterable[Tuple[object, object]]) -> List[Response]:
        """Submit many puts before pumping: fills the shard queues so the
        workers see real micro-batches instead of singletons."""
        tickets = [
            self._submit(Request("put", as_bytes(k), as_bytes(v)))
            for k, v in pairs
        ]
        return self._complete_all(tickets)

    def multi_get(self, keys: Sequence[object]) -> List[Optional[bytes]]:
        tickets = [
            self._submit(Request("get", as_bytes(k))) for k in keys
        ]
        return [r.value for r in self._complete_all(tickets)]

    def contains_many(self, keys: Sequence[object]) -> List[bool]:
        tickets = [
            self._submit(Request("contains", as_bytes(k))) for k in keys
        ]
        return [bool(r.found) for r in self._complete_all(tickets)]

    @property
    def lost_acks(self) -> int:
        """Accepted puts whose response never arrived (must stay 0).

        An explicit FAILED response (e.g. a full cuckoo shard) is a
        *negative* ack, not a lost one; ``puts_acked`` counts the OKs.
        """
        return self.puts_accepted - self.puts_responded


def run_service_workload(client: ServiceClient, operations) -> Dict[str, int]:
    """Drive a service with a YCSB stream (see ``repro.workloads.ycsb``).

    Consecutive same-kind operations are dispatched through the client's
    batch entry points, mirroring how the workers themselves amortize
    hashing.  ``scan`` is not part of the service protocol (mix E).
    """
    counts: Dict[str, int] = {}
    kind_buffer: List = []
    buffered_kind = None

    def flush() -> None:
        nonlocal buffered_kind
        if not kind_buffer:
            return
        if buffered_kind == "read":
            client.multi_get([op.key for op in kind_buffer])
        else:
            client.put_many([(op.key, op.value) for op in kind_buffer])
        kind_buffer.clear()
        buffered_kind = None

    for op in operations:
        counts[op.kind] = counts.get(op.kind, 0) + 1
        if op.kind == "scan":
            raise ValueError(
                "the service protocol has no scan; use a mix without it"
            )
        if op.kind == "rmw":
            flush()
            current = client.get(op.key)
            client.put(op.key, (current or b"")[:8] + op.value)
            continue
        kind = "read" if op.kind == "read" else "write"
        if buffered_kind not in (None, kind):
            flush()
        buffered_kind = kind
        kind_buffer.append(op)
    flush()
    return counts


__all__ = ["ServiceClient", "ServiceOverloadedError", "run_service_workload"]
