"""Cuckoo hash table — a third table design from the literature [56].

Cuckoo hashing gives worst-case O(1) lookups: every key lives in one of
two buckets determined by two hashes, and inserts evict and relocate on
collision.  It is a harsher consumer of hash randomness than probing or
chaining (insertion failure probability depends on joint independence),
which makes it a good stress test for Entropy-Learned Hashing: with
enough partial-key entropy the two derived hashes behave independently
and the table operates normally; colliding partial keys make the two
candidate buckets of the colliding keys coincide and show up as extra
evictions — never as wrong answers.

Design: 4-slot buckets (the practical standard), two hashes derived
from one 64-bit ELH hash by independent finalizers, BFS-free random-walk
eviction with a relocation cap, growth on failure.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro._util import Key, as_bytes, next_power_of_two, u64
from repro.core.hasher import EntropyLearnedHasher
from repro.engine import HashEngine

BUCKET_SLOTS = 4
MAX_RELOCATIONS = 256


def _mix(h: int, salt: int) -> int:
    """Derive an independent-looking bucket index stream from one hash."""
    h = u64(h ^ salt)
    h ^= h >> 33
    h = u64(h * 0xFF51AFD7ED558CCD)
    h ^= h >> 29
    return h


class CuckooTable:
    """Bucketed cuckoo hash table with two ELH-derived hash functions.

    >>> from repro.core.hasher import EntropyLearnedHasher
    >>> t = CuckooTable(EntropyLearnedHasher.full_key(), capacity=16)
    >>> t.insert(b"a", 1)
    >>> t.get(b"a")
    1
    """

    def __init__(
        self,
        hasher: EntropyLearnedHasher,
        capacity: int = 16,
        max_load: float = 0.9,
    ):
        if not 0.0 < max_load <= 0.98:
            raise ValueError(f"max_load must be in (0, 0.98], got {max_load}")
        self.engine = HashEngine(hasher)
        self.max_load = max_load
        self._size = 0
        self._rng = random.Random(0xC0C0)
        self._init_buckets(max(1, next_power_of_two(capacity) // BUCKET_SLOTS))
        self.relocations = 0  # eviction-path length accounting
        self.rebuilds = 0

    def _init_buckets(self, num_buckets: int) -> None:
        num_buckets = max(2, num_buckets)
        self._num_buckets = num_buckets
        self._buckets: List[List[Tuple[bytes, Any]]] = [
            [] for _ in range(num_buckets)
        ]

    # ------------------------------------------------------------- internals

    @property
    def hasher(self) -> EntropyLearnedHasher:
        return self.engine.hasher

    @hasher.setter
    def hasher(self, hasher: EntropyLearnedHasher) -> None:
        self.engine.set_hasher(hasher)

    def _bucket_pair(self, key: bytes) -> Tuple[int, int]:
        h = self.engine.hash_one(key)
        b1 = _mix(h, 0x9E3779B97F4A7C15) % self._num_buckets
        b2 = _mix(h, 0xC2B2AE3D27D4EB4F) % self._num_buckets
        if b2 == b1:
            b2 = (b1 + 1) % self._num_buckets
        return b1, b2

    @property
    def num_slots(self) -> int:
        return self._num_buckets * BUCKET_SLOTS

    @property
    def load_factor(self) -> float:
        return self._size / self.num_slots

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------ operations

    def get(self, key: Key, default: Any = None) -> Any:
        """Worst-case two-bucket lookup."""
        key = as_bytes(key)
        b1, b2 = self._bucket_pair(key)
        for bucket_index in (b1, b2):
            for existing, value in self._buckets[bucket_index]:
                if existing == key:
                    return value
        return default

    def contains(self, key: Key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __contains__(self, key: Key) -> bool:
        return self.contains(key)

    def probe_batch(self, keys: Sequence[Key], default: Any = None) -> List[Any]:
        """Look up many keys: one engine pass, vectorized bucket derivation."""
        keys = [as_bytes(k) for k in keys]
        if not keys:
            return []
        hashes = self.engine.hash_batch(keys)
        b1s, b2s = self._bucket_pairs_from_hashes(hashes)
        results: List[Any] = []
        buckets = self._buckets
        for key, b1, b2 in zip(keys, b1s, b2s):
            found = default
            for bucket_index in (int(b1), int(b2)):
                for existing, value in buckets[bucket_index]:
                    if existing == key:
                        found = value
                        break
                else:
                    continue
                break
            results.append(found)
        return results

    def _bucket_pairs_from_hashes(self, hashes) -> Tuple[Any, Any]:
        """Vectorized :func:`_mix` pair, bit-exact with :meth:`_bucket_pair`."""

        def mix(h, salt):
            h = h ^ np.uint64(salt)
            h ^= h >> np.uint64(33)
            h *= np.uint64(0xFF51AFD7ED558CCD)
            h ^= h >> np.uint64(29)
            return h

        h = np.asarray(hashes, dtype=np.uint64)
        m = np.uint64(self._num_buckets)
        b1 = mix(h, 0x9E3779B97F4A7C15) % m
        b2 = mix(h, 0xC2B2AE3D27D4EB4F) % m
        b2 = np.where(b2 == b1, (b1 + np.uint64(1)) % m, b2)
        return b1, b2

    def insert(self, key: Key, value: Any = None) -> None:
        """Insert or overwrite; grows on load or on eviction failure."""
        key = as_bytes(key)
        if self._update_in_place(key, value):
            return
        if self._size + 1 > self.max_load * self.num_slots:
            self._grow()
        entry = (key, value)
        for _ in range(8):  # retry across growths
            entry = self._place(entry)
            if entry is None:
                self._size += 1
                return
            self._grow()
        raise RuntimeError("cuckoo insertion failed after repeated growth")

    def _update_in_place(self, key: bytes, value: Any) -> bool:
        b1, b2 = self._bucket_pair(key)
        for bucket_index in (b1, b2):
            bucket = self._buckets[bucket_index]
            for i, (existing, _) in enumerate(bucket):
                if existing == key:
                    bucket[i] = (key, value)
                    return True
        return False

    def _place(self, entry: Tuple[bytes, Any]) -> Optional[Tuple[bytes, Any]]:
        """Random-walk insertion; returns the homeless entry on failure."""
        for _ in range(MAX_RELOCATIONS):
            key, _ = entry
            b1, b2 = self._bucket_pair(key)
            for bucket_index in (b1, b2):
                bucket = self._buckets[bucket_index]
                if len(bucket) < BUCKET_SLOTS:
                    bucket.append(entry)
                    return None
            # Both buckets full: evict a random victim from one of them.
            victim_bucket = self._buckets[self._rng.choice((b1, b2))]
            slot = self._rng.randrange(BUCKET_SLOTS)
            entry, victim_bucket[slot] = victim_bucket[slot], entry
            self.relocations += 1
        return entry

    def delete(self, key: Key) -> bool:
        """Remove ``key``; returns whether it was present."""
        key = as_bytes(key)
        b1, b2 = self._bucket_pair(key)
        for bucket_index in (b1, b2):
            bucket = self._buckets[bucket_index]
            for i, (existing, _) in enumerate(bucket):
                if existing == key:
                    bucket.pop(i)
                    self._size -= 1
                    return True
        return False

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        for bucket in self._buckets:
            yield from bucket

    # --------------------------------------------------------------- resizing

    def _grow(self) -> None:
        self.rebuilds += 1
        entries = list(self.items())
        num_buckets = self._num_buckets * 2
        while True:
            self._init_buckets(num_buckets)
            self._size = 0
            success = True
            for key, value in entries:
                if self._place((key, value)) is not None:
                    success = False
                    break
                self._size += 1
            if success:
                return
            num_buckets *= 2  # extremely unlikely right after doubling
