"""Backwards-compatible re-export of the collision monitor.

The monitor moved to :mod:`repro.engine.monitor` when the fallback
decision was centralized in the batched :class:`~repro.engine.HashEngine`
(every structure used to wire its own monitor; now the engine owns it).
Import from here keeps working for older code and tests.
"""

from repro.engine.monitor import CollisionMonitor, MonitorVerdict

__all__ = ["CollisionMonitor", "MonitorVerdict"]
