"""Linear-probing hash table with SwissTable-style tag bits.

Mirrors the structure of Google's SwissTable (the paper's main hash-table
baseline): every slot carries an 8-bit *tag* derived from the key's hash.
A probe walks the tag array first and only compares full keys when the
tag matches, which is why (as the paper notes) probing for *missing* keys
is cheaper than for present keys — misses usually terminate on tag
mismatches alone.

The table counts tag probes, full-key comparisons, and probe-chain
lengths so experiments can validate the paper's comparison-count bounds
(eqs. 3-6) exactly rather than inferring them from timings.

Hashing routes through one :class:`~repro.engine.HashEngine` whose
:class:`~repro.engine.reducers.SlotTagReducer` performs the (slot, tag)
split in the same vectorized pass as the hash itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro._util import Key, as_bytes, next_power_of_two
from repro.core.hasher import EntropyLearnedHasher
from repro.engine import HashEngine, SlotTagReducer

_EMPTY = 0
_DELETED = 1
# Tags 2..255 encode 254 hash-derived values; 0/1 are control states.
_TAG_STATES = 2

DEFAULT_MAX_LOAD = 0.875


@dataclass
class ProbeStats:
    """Work counters for table operations (reset with :meth:`clear`)."""

    probes: int = 0
    tag_checks: int = 0
    key_comparisons: int = 0
    chain_total: int = 0

    def clear(self) -> None:
        self.probes = 0
        self.tag_checks = 0
        self.key_comparisons = 0
        self.chain_total = 0

    @property
    def comparisons_per_probe(self) -> float:
        """Average full-key comparisons per probe (the paper's P / P')."""
        if self.probes == 0:
            return 0.0
        return self.key_comparisons / self.probes

    @property
    def chain_per_probe(self) -> float:
        """Average probe-chain length per operation."""
        if self.probes == 0:
            return 0.0
        return self.chain_total / self.probes


class LinearProbingTable:
    """Open-addressing table: hash → slot, walk right until empty slot.

    >>> from repro.core.hasher import EntropyLearnedHasher
    >>> t = LinearProbingTable(EntropyLearnedHasher.full_key(), capacity=8)
    >>> t.insert(b"alpha", 1)
    >>> t.get(b"alpha")
    1
    >>> t.get(b"beta") is None
    True
    """

    def __init__(
        self,
        hasher: EntropyLearnedHasher,
        capacity: int = 16,
        max_load: float = DEFAULT_MAX_LOAD,
    ):
        if not 0.0 < max_load < 1.0:
            raise ValueError(f"max_load must be in (0, 1), got {max_load}")
        self.engine = HashEngine(hasher)
        self.max_load = max_load
        self._size = 0
        self._tombstones = 0
        self._in_rehash = False
        self._init_slots(next_power_of_two(max(capacity, 2)))
        self.stats = ProbeStats()

    def _init_slots(self, num_slots: int) -> None:
        self._mask = num_slots - 1
        self._reducer = SlotTagReducer(self._mask, tag_states=_TAG_STATES)
        self._tags: List[int] = [_EMPTY] * num_slots
        self._keys: List[Optional[bytes]] = [None] * num_slots
        self._values: List[Any] = [None] * num_slots

    # ------------------------------------------------------------- internals

    @property
    def hasher(self) -> EntropyLearnedHasher:
        return self.engine.hasher

    @hasher.setter
    def hasher(self, hasher: EntropyLearnedHasher) -> None:
        self.engine.set_hasher(hasher)

    def _slot_and_tag(self, key: bytes) -> Tuple[int, int]:
        return self.engine.hash_one(key, self._reducer)

    def _slot_and_tag_from_hash(self, h: int) -> Tuple[int, int]:
        # High bits pick the slot, low 8 bits (excluding control states)
        # make the tag — disjoint bit ranges, as SwissTable does.
        return self._reducer.apply_one(int(h))

    @property
    def num_slots(self) -> int:
        return self._mask + 1

    @property
    def load_factor(self) -> float:
        return (self._size + self._tombstones) / self.num_slots

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------ operations

    def insert(self, key: Key, value: Any = None) -> None:
        """Insert or overwrite ``key``.

        Grows (×2) when the load factor would exceed ``max_load``; growth
        calls :meth:`_on_grow`, the hook entropy-aware wrappers use to
        upgrade the hash function (Section 5).  A table dominated by
        tombstones instead rehashes in place at the same capacity, so
        delete-heavy churn cannot double capacity indefinitely.
        """
        key = as_bytes(key)
        self._insert_one(key, value, None, -1)

    def _insert_one(self, key: bytes, value: Any, h: Optional[int], generation: int) -> None:
        """Shared insert step for the scalar and batch paths.

        ``h`` is a precomputed raw 64-bit hash from the batch pipeline
        (geometry-independent, so it survives growth); it is recomputed
        whenever the engine's generation moved past ``generation`` — a
        resize upgraded the hasher or a monitor fallback fired mid-batch.
        """
        self._ensure_room()
        if h is None or generation != self.engine.generation:
            slot, tag = self._slot_and_tag(key)
        else:
            slot, tag = self._slot_and_tag_from_hash(h)
        self._insert_at(key, value, slot, tag)

    def _ensure_room(self) -> None:
        """Make room for one more entry.

        Mostly-tombstone tables (``_tombstones >= _size``) compact in
        place — same capacity, tombstones dropped — instead of growing;
        otherwise the table doubles as usual.
        """
        while (self._size + self._tombstones + 1) > self.max_load * self.num_slots:
            if self._tombstones > 0 and self._tombstones >= self._size:
                self._rehash(self.num_slots)
            else:
                self._grow()

    def _insert_at(self, key: bytes, value: Any, slot: int, tag: int) -> None:
        first_deleted = None
        displacement = 0
        while True:
            state = self._tags[slot]
            if state == _EMPTY:
                target = first_deleted if first_deleted is not None else slot
                if first_deleted is not None:
                    self._tombstones -= 1
                self._tags[target] = tag
                self._keys[target] = key
                self._values[target] = value
                self._size += 1
                self._after_insert(displacement)
                return
            if state == _DELETED:
                if first_deleted is None:
                    first_deleted = slot
            elif state == tag and self._keys[slot] == key:
                self._values[slot] = value
                return
            displacement += 1
            slot = (slot + 1) & self._mask

    def _after_insert(self, displacement: int) -> None:
        """Post-insert hook; entropy-aware subclasses feed the collision
        monitor here (the probe distance is the paper's cheap signal)."""

    def get(self, key: Key, default: Any = None) -> Any:
        """Value stored under ``key``, or ``default``."""
        key = as_bytes(key)
        slot, tag = self._slot_and_tag(key)
        self.stats.probes += 1
        chain = 0
        while True:
            state = self._tags[slot]
            chain += 1
            self.stats.tag_checks += 1
            if state == _EMPTY:
                self.stats.chain_total += chain
                return default
            if state == tag:
                self.stats.key_comparisons += 1
                if self._keys[slot] == key:
                    self.stats.chain_total += chain
                    return self._values[slot]
            slot = (slot + 1) & self._mask

    def contains(self, key: Key) -> bool:
        """Membership test (probes exactly like :meth:`get`)."""
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __contains__(self, key: Key) -> bool:
        return self.contains(key)

    def delete(self, key: Key) -> bool:
        """Remove ``key``; returns whether it was present (tombstoned)."""
        key = as_bytes(key)
        slot, tag = self._slot_and_tag(key)
        while True:
            state = self._tags[slot]
            if state == _EMPTY:
                return False
            if state == tag and self._keys[slot] == key:
                self._tags[slot] = _DELETED
                self._keys[slot] = None
                self._values[slot] = None
                self._size -= 1
                self._tombstones += 1
                return True
            slot = (slot + 1) & self._mask

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        """All (key, value) pairs, in slot order."""
        for i, state in enumerate(self._tags):
            if state >= _TAG_STATES:
                yield self._keys[i], self._values[i]

    def insert_batch(self, keys: Sequence[Key], values=None) -> None:
        """Insert many keys, hashing them in one engine pass.

        ``values`` defaults to the keys themselves.  Growth decisions are
        made per key, exactly as the equivalent scalar loop would make
        them, so batch- and scalar-built tables end with identical
        geometry and identical :class:`ProbeStats` — duplicate keys in a
        batch no longer over-grow the table.  The raw 64-bit hashes are
        still computed in one vectorized pass; they are geometry-
        independent, so mid-batch growth does not invalidate them.
        """
        keys = [as_bytes(k) for k in keys]
        if values is None:
            values = keys
        if len(values) != len(keys):
            raise ValueError("values must match keys in length")
        if not keys:
            return
        generation = self.engine.generation
        hashes = self.engine.hash_batch(keys)
        for key, value, h in zip(keys, values, hashes):
            self._insert_one(key, value, int(h), generation)

    def _insert_hashed(self, key: bytes, value: Any, h: int) -> None:
        slot, tag = self._slot_and_tag_from_hash(h)
        self._insert_at(key, value, slot, tag)

    def probe_batch(self, keys: Sequence[Key]) -> List[Any]:
        """Probe many keys, hashing them in one engine pass."""
        keys = [as_bytes(k) for k in keys]
        slots, probe_tags = self.engine.hash_batch(keys, self._reducer)
        results = []
        tags = self._tags
        table_keys = self._keys
        values = self._values
        mask = self._mask
        stats = self.stats
        for key, slot, tag in zip(keys, slots, probe_tags):
            slot = int(slot)
            tag = int(tag)
            stats.probes += 1
            chain = 0
            while True:
                state = tags[slot]
                chain += 1
                stats.tag_checks += 1
                if state == _EMPTY:
                    stats.chain_total += chain
                    results.append(None)
                    break
                if state == tag:
                    stats.key_comparisons += 1
                    if table_keys[slot] == key:
                        stats.chain_total += chain
                        results.append(values[slot])
                        break
                slot = (slot + 1) & mask
        return results

    def probe_batch_hashed(
        self, keys: Sequence[bytes], hashes, generation: Optional[int] = None
    ) -> List[Any]:
        """Probe with precomputed hashes (paper-style pipelining).

        Benchmarks compute hashes in one vectorized pass and then walk
        the table, mirroring the paper's probe pipeline and letting the
        hash-computation and table-access costs be measured separately
        (Figure 7's breakdown).

        ``generation``, when supplied, is the engine generation the
        caller snapshotted when it computed ``hashes``; a mismatch means
        the hasher was swapped in between (monitor fallback or plan
        re-learn) and the hashes are recomputed rather than probed
        stale.
        """
        if generation is not None and generation != self.engine.generation:
            hashes = self.engine.hash_batch(keys)
        results = []
        tags = self._tags
        table_keys = self._keys
        values = self._values
        mask = self._mask
        for key, h in zip(keys, hashes):
            slot, tag = self._slot_and_tag_from_hash(int(h))
            while True:
                state = tags[slot]
                if state == _EMPTY:
                    results.append(None)
                    break
                if state == tag and table_keys[slot] == key:
                    results.append(values[slot])
                    break
                slot = (slot + 1) & mask
        return results

    # --------------------------------------------------------------- resizing

    def _grow(self) -> None:
        new_slots = self.num_slots * 2
        self._on_grow(new_slots)
        self._rehash(new_slots)

    def _on_grow(self, new_num_slots: int) -> None:
        """Growth hook; subclasses may swap ``self.hasher`` here."""

    def _rehash(self, num_slots: int) -> None:
        entries = list(self.items())
        self._init_slots(num_slots)
        self._size = 0
        self._tombstones = 0
        # Re-inserts replay keys in old-table slot order, which is highly
        # correlated; collision monitors must not judge that burst.
        self._in_rehash = True
        try:
            for key, value in entries:
                self.insert(key, value)
        finally:
            self._in_rehash = False

    def rebuild_with_hasher(self, hasher: EntropyLearnedHasher) -> None:
        """Rehash every entry with a new hash (robustness fallback path)."""
        self.engine.set_hasher(hasher)
        self._rehash(self.num_slots)

    # ------------------------------------------------------------ diagnostics

    def displacement_histogram(self) -> List[int]:
        """How far each stored key sits from its home slot (diagnostics)."""
        result = []
        for i, state in enumerate(self._tags):
            if state < _TAG_STATES:
                continue
            home, _ = self._slot_and_tag(self._keys[i])
            result.append((i - home) & self._mask)
        return result


class EntropyAwareProbingTable(LinearProbingTable):
    """Linear-probing table with Section 5's full runtime infrastructure.

    On construction and at every growth it asks a trained model for the
    cheapest hasher with ``log2(capacity) + log2(5)`` bits; the engine's
    collision monitor watches insert displacements and, when they exceed
    what the learned entropy predicts, rebuilds the table with full-key
    hashing (the robustness fallback the appendix's train/test-mismatch
    experiment relies on).
    """

    def __init__(
        self,
        model,
        capacity: int = 16,
        max_load: float = DEFAULT_MAX_LOAD,
        monitor: Optional["CollisionMonitor"] = None,
        seed: int = 0,
    ):
        from repro.engine.monitor import CollisionMonitor

        self.model = model
        self._seed = seed
        num_slots = next_power_of_two(max(capacity, 2))
        # Fresh-build geometry for the spec'd capacity; relearn() resets
        # to it so transient over-growth cannot ratchet the entropy
        # demand up forever (see EntropyAwareTable).
        self._spec_slots = num_slots
        target = max(1, int(max_load * num_slots))
        hasher = model.hasher_for_probing_table(target, seed=seed)
        if monitor is None and not hasher.partial_key.is_full_key:
            words = len(hasher.partial_key.positions)
            monitor = CollisionMonitor(
                entropy=model.result.entropy_at(words), num_slots=num_slots
            )
        super().__init__(hasher, capacity=capacity, max_load=max_load)
        self.engine.monitor = monitor

    @property
    def monitor(self):
        return self.engine.monitor

    @monitor.setter
    def monitor(self, monitor) -> None:
        self.engine.monitor = monitor

    @property
    def fallen_back(self) -> bool:
        """True once the monitor forced a full-key rebuild."""
        return self.engine.fell_back

    def _on_grow(self, new_num_slots: int) -> None:
        if self.fallen_back:
            return
        target = max(1, int(self.max_load * new_num_slots))
        self.engine.set_hasher(
            self.model.hasher_for_probing_table(target, seed=self._seed)
        )
        if self.monitor is not None:
            self.monitor.num_slots = new_num_slots
            self.monitor.reset()

    def _after_insert(self, displacement: int) -> None:
        if self._in_rehash:
            return
        # Structural baseline: Knuth's expected displacement for an
        # ideal hash at the current load, (Q1(m, n) - 1) / 2.  The
        # engine weighs it against the entropy budget and swaps itself
        # to full-key hashing when the budget is blown.
        alpha = min(0.95, self._size / self.num_slots)
        baseline = 0.5 * (1.0 / (1.0 - alpha) ** 2 - 1.0)
        if self.engine.record_insert(displacement, expected=baseline, n=self._size):
            self._rehash(self.num_slots)

    def _fall_back_to_full_key(self) -> None:
        self.engine.fall_back_to_full_key()
        self._rehash(self.num_slots)

    def relearn(self, model) -> None:
        """Hot-swap to a freshly trained model (drift recovery).

        Mirrors :meth:`EntropyAwareTable.relearn`: geometry reset to
        the fresh-build sizing for the current occupancy (tombstones
        drop in the rehash, so live entries are what counts), cheapest
        hasher re-picked for *that* geometry, ``engine.rearm``
        (fallback latch cleared, monitor entropy re-based), rehash
        under the bumped generation.
        """
        self.model = model
        fit = next_power_of_two(
            max(int(math.ceil(self._size / self.max_load)), 2)
        )
        num_slots = max(self._spec_slots, fit)
        target = max(1, int(self.max_load * num_slots))
        hasher = model.hasher_for_probing_table(target, seed=self._seed)
        entropy = None
        if not hasher.partial_key.is_full_key:
            words = len(hasher.partial_key.positions)
            entropy = model.result.entropy_at(words)
        self.engine.rearm(hasher, entropy=entropy)
        if self.monitor is not None:
            self.monitor.num_slots = num_slots
        self._rehash(num_slots)
