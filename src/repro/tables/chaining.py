"""Separate-chaining hash table and the entropy-aware growth wrapper.

The chaining table is the simpler of the paper's two prototypical designs
(Section 4.1.1): an array of buckets, collisions resolved by appending to
the bucket.  It counts key comparisons so experiments can check the
paper's equations (1)-(2) directly.

:class:`EntropyAwareTable` implements paper Section 5's "Creating Hash
Tables": the table knows its maximum capacity before the next rehash and
asks a trained :class:`~repro.core.trainer.EntropyModel` for a hasher
with ``log2(capacity) + 1`` bits; every growth re-consults the model, so
the hash gains words exactly when the data structure's entropy demand
crosses the next frontier step (the Figure 4 life cycle).

All hashing — scalar and batched — routes through one
:class:`~repro.engine.HashEngine`, which compiles the partial-key gather,
fuses the bucket-mask reduction, and owns the collision-monitor fallback.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro._util import Key, as_bytes, next_power_of_two
from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import EntropyModel
from repro.engine import CollisionMonitor, HashEngine, MaskReducer
from repro.tables.probing import ProbeStats

DEFAULT_MAX_LOAD = 1.0


class SeparateChainingTable:
    """Array of buckets; each bucket is a list of (key, value) pairs.

    >>> from repro.core.hasher import EntropyLearnedHasher
    >>> t = SeparateChainingTable(EntropyLearnedHasher.full_key(), capacity=4)
    >>> t.insert(b"k", 42)
    >>> t.get(b"k")
    42
    """

    def __init__(
        self,
        hasher: EntropyLearnedHasher,
        capacity: int = 16,
        max_load: float = DEFAULT_MAX_LOAD,
    ):
        if max_load <= 0.0:
            raise ValueError(f"max_load must be positive, got {max_load}")
        self.engine = HashEngine(hasher)
        self.max_load = max_load
        self._size = 0
        self._in_rehash = False
        self._init_buckets(next_power_of_two(max(capacity, 2)))
        self.stats = ProbeStats()

    def _init_buckets(self, num_buckets: int) -> None:
        self._mask = num_buckets - 1
        self._reducer = MaskReducer(self._mask)
        self._buckets: List[List[Tuple[bytes, Any]]] = [[] for _ in range(num_buckets)]

    @property
    def hasher(self) -> EntropyLearnedHasher:
        return self.engine.hasher

    @hasher.setter
    def hasher(self, hasher: EntropyLearnedHasher) -> None:
        self.engine.set_hasher(hasher)

    @property
    def num_buckets(self) -> int:
        return self._mask + 1

    @property
    def load_factor(self) -> float:
        return self._size / self.num_buckets

    @property
    def capacity_before_rehash(self) -> int:
        """Maximum item count the current bucket array will hold."""
        return int(self.max_load * self.num_buckets)

    def __len__(self) -> int:
        return self._size

    def _bucket_index(self, key: bytes) -> int:
        return self.engine.hash_one(key, self._reducer)

    # ------------------------------------------------------------ operations

    def insert(self, key: Key, value: Any = None) -> None:
        """Insert or overwrite ``key``; grows ×2 past ``max_load``."""
        key = as_bytes(key)
        self._insert_one(key, value, None, -1)

    def _insert_one(self, key: bytes, value: Any, h: Optional[int], generation: int) -> None:
        """Shared insert step for the scalar and batch paths.

        ``h`` is a precomputed raw hash from the batch pipeline; it is
        recomputed when the engine generation moved (growth swapped the
        hasher, or a monitor fallback fired mid-batch).
        """
        if self._size + 1 > self.capacity_before_rehash:
            self._grow()
        bucket = self._buckets[self._bucket_for(key, h, generation)]
        for i, (existing, _) in enumerate(bucket):
            if existing == key:
                bucket[i] = (key, value)
                return
        bucket.append((key, value))
        self._size += 1

    def _bucket_for(self, key: bytes, h: Optional[int], generation: int) -> int:
        if h is None or generation != self.engine.generation:
            return self._bucket_index(key)
        return int(h) & self._mask

    def get(self, key: Key, default: Any = None) -> Any:
        """Value stored under ``key``; counts comparisons in ``stats``."""
        key = as_bytes(key)
        bucket = self._buckets[self._bucket_index(key)]
        self.stats.probes += 1
        self.stats.chain_total += len(bucket)
        for existing, value in bucket:
            self.stats.key_comparisons += 1
            if existing == key:
                return value
        return default

    def contains(self, key: Key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __contains__(self, key: Key) -> bool:
        return self.contains(key)

    def delete(self, key: Key) -> bool:
        """Remove ``key``; returns whether it was present."""
        key = as_bytes(key)
        bucket = self._buckets[self._bucket_index(key)]
        for i, (existing, _) in enumerate(bucket):
            if existing == key:
                bucket.pop(i)
                self._size -= 1
                return True
        return False

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        for bucket in self._buckets:
            yield from bucket

    def insert_batch(self, keys: Sequence[Key], values=None) -> None:
        """Insert many keys, hashing them in one engine pass.

        Growth decisions are made per key, exactly as the equivalent
        scalar loop would — duplicate keys in a batch no longer over-grow
        the bucket array, so batch- and scalar-built tables have
        identical geometry and :class:`ProbeStats`.  The raw hashes are
        geometry-independent, so mid-batch growth does not invalidate
        the one vectorized hash pass.
        """
        keys = [as_bytes(k) for k in keys]
        if values is None:
            values = keys
        if len(values) != len(keys):
            raise ValueError("values must match keys in length")
        if not keys:
            return
        generation = self.engine.generation
        hashes = self.engine.hash_batch(keys)
        for key, value, h in zip(keys, values, hashes):
            self._insert_one(key, value, int(h), generation)

    def probe_batch(self, keys: Sequence[Key]) -> List[Any]:
        """Look up many keys, hashing them in one engine pass."""
        keys = [as_bytes(k) for k in keys]
        indices = self.engine.hash_batch(keys, self._reducer)
        results = []
        buckets = self._buckets
        stats = self.stats
        for key, index in zip(keys, indices):
            bucket = buckets[index]
            stats.probes += 1
            stats.chain_total += len(bucket)
            found = None
            for existing, value in bucket:
                stats.key_comparisons += 1
                if existing == key:
                    found = value
                    break
            results.append(found)
        return results

    def probe_batch_hashed(
        self, keys: Sequence[bytes], hashes, generation: Optional[int] = None
    ) -> List[Any]:
        """Probe with precomputed hashes (see LinearProbingTable).

        Callers that precomputed ``hashes`` earlier should pass the
        engine ``generation`` they snapshotted at hash time; if the
        hasher was swapped since (monitor fallback, plan re-learn), the
        stale hashes are discarded and recomputed — the probe analogue
        of ``_bucket_for``'s insert-time recompute.
        """
        if generation is not None and generation != self.engine.generation:
            hashes = self.engine.hash_batch(keys)
        results = []
        buckets = self._buckets
        mask = self._mask
        for key, h in zip(keys, hashes):
            found = None
            for existing, value in buckets[int(h) & mask]:
                if existing == key:
                    found = value
                    break
            results.append(found)
        return results

    # --------------------------------------------------------------- resizing

    def _grow(self) -> None:
        new_buckets = self.num_buckets * 2
        self._on_grow(new_buckets)
        self._rehash(new_buckets)

    def _on_grow(self, new_num_buckets: int) -> None:
        """Growth hook; :class:`EntropyAwareTable` upgrades the hash here."""

    def _rehash(self, num_buckets: int) -> None:
        entries = list(self.items())
        self._init_buckets(num_buckets)
        self._size = 0
        # Monitors must not judge the correlated re-insert burst.
        self._in_rehash = True
        try:
            for key, value in entries:
                self.insert(key, value)
        finally:
            self._in_rehash = False

    def rebuild_with_hasher(self, hasher: EntropyLearnedHasher) -> None:
        """Rehash all entries under a new hash (robustness fallback)."""
        self.engine.set_hasher(hasher)
        self._rehash(self.num_buckets)

    # ------------------------------------------------------------ diagnostics

    def chain_length_histogram(self) -> List[int]:
        """Bucket sizes; the quantity chaining analysis reasons about."""
        return [len(b) for b in self._buckets]


class EntropyAwareTable(SeparateChainingTable):
    """Chaining table that re-chooses its hash as it grows (Section 5).

    On construction and at every growth, asks the trained model for the
    cheapest partial-key hasher with ``log2(capacity) + 1`` bits for the
    *new* capacity; if the frontier cannot provide it, falls back to
    full-key hashing.  The engine's collision monitor triggers the
    full-key rebuild when observed collisions exceed what the learned
    entropy predicts (the Section 5 robustness story).
    """

    def __init__(
        self,
        model: EntropyModel,
        capacity: int = 16,
        max_load: float = DEFAULT_MAX_LOAD,
        monitor: Optional[CollisionMonitor] = None,
        seed: int = 0,
    ):
        self.model = model
        self._seed = seed
        num_buckets = next_power_of_two(max(capacity, 2))
        # The geometry a fresh build of the spec'd capacity chooses;
        # relearn() resets to it so transient over-growth (e.g. one
        # shard absorbing a whole drifted stream before migration) does
        # not ratchet the entropy demand up forever.
        self._spec_buckets = num_buckets
        hasher = model.hasher_for_chaining_table(
            max(1, int(max_load * num_buckets)), seed=seed
        )
        super().__init__(hasher, capacity=capacity, max_load=max_load)
        self.engine.monitor = monitor

    @property
    def monitor(self) -> Optional[CollisionMonitor]:
        return self.engine.monitor

    @monitor.setter
    def monitor(self, monitor: Optional[CollisionMonitor]) -> None:
        self.engine.monitor = monitor

    @property
    def fallen_back(self) -> bool:
        """True once the monitor forced a full-key rebuild."""
        return self.engine.fell_back

    def _on_grow(self, new_num_buckets: int) -> None:
        if self.fallen_back:
            return
        new_capacity = max(1, int(self.max_load * new_num_buckets))
        self.engine.set_hasher(
            self.model.hasher_for_chaining_table(new_capacity, seed=self._seed)
        )

    def _insert_one(self, key: bytes, value: Any, h: Optional[int], generation: int) -> None:
        if self._size + 1 > self.capacity_before_rehash:
            self._grow()
        bucket = self._buckets[self._bucket_for(key, h, generation)]
        for i, (existing, _) in enumerate(bucket):
            if existing == key:
                bucket[i] = (key, value)
                return
        if not self._in_rehash:
            # Displacement for chaining = how many keys already share the
            # bucket; the cheap signal the paper says to track.  The
            # engine compares it against the entropy budget and, past it,
            # swaps itself to full-key hashing before we rehash.  Batch
            # inserts route through here too, so the monitor sees every
            # insert regardless of code path.
            if self.engine.record_insert(
                len(bucket),
                expected=self._size / self.num_buckets,
                n=self._size + 1,
            ):
                self._rehash(self.num_buckets)
                # The fallback bumped the engine generation, so a batch-
                # precomputed hash is recomputed with the full-key hasher.
                bucket = self._buckets[self._bucket_for(key, h, generation)]
        bucket.append((key, value))
        self._size += 1

    def _fall_back_to_full_key(self) -> None:
        self.engine.fall_back_to_full_key()
        self._rehash(self.num_buckets)

    def relearn(self, model: EntropyModel) -> None:
        """Hot-swap to a freshly trained model (drift recovery).

        A drift swap is a whole-table rebuild, so the geometry also
        resets to what a fresh build would choose for the current
        occupancy (never below the spec'd initial sizing).  Re-picking
        the hasher for the *grown* geometry instead would let a shard
        that transiently ballooned — e.g. while absorbing a
        concentrated drifted stream before migration rebalanced it —
        keep demanding the ballooned capacity's entropy forever,
        locking it into full-key hashing no certified plan can lift.
        The engine rearms (fallback latch cleared, monitor re-based on
        the new entropy claim) and the generation bump makes any hash
        precomputed mid-swap recompute itself on use.
        """
        self.model = model
        fit = next_power_of_two(
            max(int(math.ceil(self._size / self.max_load)), 2)
        )
        num_buckets = max(self._spec_buckets, fit)
        target = max(1, int(self.max_load * num_buckets))
        hasher = model.hasher_for_chaining_table(target, seed=self._seed)
        entropy = None
        if not hasher.partial_key.is_full_key:
            words = len(hasher.partial_key.positions)
            entropy = model.result.entropy_at(words)
        self.engine.rearm(hasher, entropy=entropy)
        self._rehash(num_buckets)
