"""A numpy-backed linear-probing table with vectorized batch probes.

:class:`VectorProbingTable` keeps the tag array as a numpy ``uint8``
vector and resolves a *batch* of probes round by round: at each round
every still-unresolved probe checks its current slot's tag in one
vectorized comparison; only probes whose tag matched fall back to a
(scalar) full-key comparison.  Because tags filter ~255/256 of
mismatches, almost all work per round is the two vectorized compares —
this is the closest Python analogue of SwissTable's SIMD group probe
and the engine behind the sharpest Figure 6-style measurements.

Semantics match :class:`~repro.tables.probing.LinearProbingTable`
(inserts, lookups, growth); deletion is intentionally unsupported — the
batch engine targets build-once/probe-many phases like hash joins, where
tombstone handling would only slow the common path.  Hashing and the
(slot, tag) split run inside the shared :class:`~repro.engine.HashEngine`.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro._util import Key, as_bytes, next_power_of_two
from repro.core.hasher import EntropyLearnedHasher
from repro.engine import HashEngine, SlotTagReducer

_EMPTY = 0
_TAG_STATES = 2  # keep tag encoding identical to LinearProbingTable


class VectorProbingTable:
    """Build-once / probe-many open-addressing table.

    >>> from repro.core.hasher import EntropyLearnedHasher
    >>> t = VectorProbingTable(EntropyLearnedHasher.full_key(), capacity=8)
    >>> t.insert_batch([b"a", b"b"], [1, 2])
    >>> t.probe_batch([b"a", b"x", b"b"])
    [1, None, 2]
    """

    def __init__(
        self,
        hasher: EntropyLearnedHasher,
        capacity: int = 16,
        max_load: float = 0.875,
    ):
        if not 0.0 < max_load < 1.0:
            raise ValueError(f"max_load must be in (0, 1), got {max_load}")
        self.engine = HashEngine(hasher)
        self.max_load = max_load
        self._size = 0
        self._init_slots(next_power_of_two(max(capacity, 2)))

    def _init_slots(self, num_slots: int) -> None:
        self._mask = num_slots - 1
        self._reducer = SlotTagReducer(self._mask, tag_states=_TAG_STATES)
        self._tags = np.zeros(num_slots, dtype=np.uint8)
        self._keys: List[Optional[bytes]] = [None] * num_slots
        self._values: List[Any] = [None] * num_slots

    @property
    def hasher(self) -> EntropyLearnedHasher:
        return self.engine.hasher

    @hasher.setter
    def hasher(self, hasher: EntropyLearnedHasher) -> None:
        self.engine.set_hasher(hasher)

    @property
    def num_slots(self) -> int:
        return self._mask + 1

    @property
    def load_factor(self) -> float:
        return self._size / self.num_slots

    def __len__(self) -> int:
        return self._size

    # --------------------------------------------------------------- building

    def insert_batch(self, keys: Sequence[Key], values=None) -> None:
        """Insert many keys (vectorized hashing, scalar placement)."""
        keys = [as_bytes(k) for k in keys]
        if values is None:
            values = keys
        if len(values) != len(keys):
            raise ValueError("values must match keys in length")
        while (self._size + len(keys)) > self.max_load * self.num_slots:
            self._grow()
        slots, probe_tags = self.engine.hash_batch(keys, self._reducer)
        tags = self._tags
        mask = self._mask
        for key, value, slot, tag in zip(keys, values, slots, probe_tags):
            slot = int(slot)
            tag = int(tag)
            while True:
                state = tags[slot]
                if state == _EMPTY:
                    tags[slot] = tag
                    self._keys[slot] = key
                    self._values[slot] = value
                    self._size += 1
                    break
                if state == tag and self._keys[slot] == key:
                    self._values[slot] = value
                    break
                slot = (slot + 1) & mask

    def insert(self, key: Key, value: Any = None) -> None:
        """Single insert (delegates to the batch path)."""
        self.insert_batch([key], [value])

    def _grow(self) -> None:
        entries = [
            (self._keys[i], self._values[i])
            for i in range(self.num_slots)
            if self._tags[i] >= _TAG_STATES
        ]
        self._init_slots(self.num_slots * 2)
        self._size = 0
        if entries:
            self.insert_batch([k for k, _ in entries], [v for _, v in entries])

    # ---------------------------------------------------------------- probing

    def probe_batch(self, keys: Sequence[Key], default: Any = None) -> List[Any]:
        """Probe many keys with round-synchronous vectorized tag checks.

        Each round advances every unresolved probe by one slot; the tag
        comparisons for the whole batch are two numpy operations, and
        only tag *matches* (rare for misses) cost a full-key comparison.
        """
        keys = [as_bytes(k) for k in keys]
        n = len(keys)
        if n == 0:
            return []
        slots, tags = self.engine.hash_batch(keys, self._reducer)

        results: List[Any] = [default] * n
        active = np.arange(n)
        table_tags = self._tags
        table_keys = self._keys
        table_values = self._values

        for _round in range(self.num_slots + 1):
            if active.size == 0:
                break
            cur_slots = slots[active]
            states = table_tags[cur_slots]

            # Probes landing on an empty slot are resolved misses.
            empty = states == _EMPTY
            # Probes whose tag matches must compare the full key.
            matches = states == tags[active]
            still = np.ones(active.size, dtype=bool)
            still[empty] = False

            for local_index in np.nonzero(matches)[0]:
                probe = active[local_index]
                slot = int(cur_slots[local_index])
                if table_keys[slot] == keys[probe]:
                    results[probe] = table_values[slot]
                    still[local_index] = False

            active = active[still]
            if active.size:
                slots[active] = (slots[active] + 1) & np.int64(self._mask)
        return results

    def get(self, key: Key, default: Any = None) -> Any:
        """Single lookup (delegates to the batch path)."""
        return self.probe_batch([key], default=default)[0]

    def contains(self, key: Key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __contains__(self, key: Key) -> bool:
        return self.contains(key)

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        for i in range(self.num_slots):
            if self._tags[i] >= _TAG_STATES:
                yield self._keys[i], self._values[i]
