"""Hash-table substrates.

Two prototypical designs from paper Section 4.1, both instrumented to
count exactly the quantities the analysis bounds (key comparisons, tag
probes, probe-chain lengths):

* :class:`~repro.tables.chaining.SeparateChainingTable` — an array of
  buckets, standing in for ``std::unordered_map`` (appendix experiment 2).
* :class:`~repro.tables.probing.LinearProbingTable` — open addressing
  with an 8-bit tag array probed before full-key comparison, standing in
  for Google's SwissTable.

Plus the Section 5 runtime infrastructure: growth-triggered hash
upgrades (:class:`~repro.tables.chaining.EntropyAwareTable`) and the
collision monitor with full-key fallback (:mod:`repro.tables.monitor`).
"""

from repro.tables.chaining import EntropyAwareTable, SeparateChainingTable
from repro.tables.cuckoo import CuckooTable
from repro.tables.monitor import CollisionMonitor, MonitorVerdict
from repro.tables.probing import (
    EntropyAwareProbingTable,
    LinearProbingTable,
    ProbeStats,
)
from repro.tables.vectorized import VectorProbingTable

__all__ = [
    "SeparateChainingTable",
    "CuckooTable",
    "EntropyAwareTable",
    "LinearProbingTable",
    "EntropyAwareProbingTable",
    "VectorProbingTable",
    "ProbeStats",
    "CollisionMonitor",
    "MonitorVerdict",
]
