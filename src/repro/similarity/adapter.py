"""The similarity service backend: documents in, neighbors out.

:class:`SimilarityAdapter` is the sixth
:class:`~repro.service.adapters.StructureAdapter`: a shard stores
*documents* (arbitrary value bytes) keyed by item key, sketches each
document into a :class:`~repro.similarity.signatures.BBitMinHash` over
its byte shingles, and indexes the signature in an
:class:`~repro.similarity.index.LSHIndex`.  On top of the usual
get/put/delete/contains surface it serves the ``similar`` verb: the
per-key payload carries k (ASCII decimal in ``request.value``) and the
answer is the top-k ``(key, estimated_jaccard)`` neighbors among the
shard's items, or None when the queried key is unknown.

Everything is derived deterministically from ``(key, document)`` pairs
under the adapter's configuration, which is what makes the journal
machinery work unchanged: replaying ``put`` entries through
:meth:`put_batch` re-shingles and re-sketches each document into
bit-identical signatures, so crash recovery, process-child spawn, and
live shard-split migration all rebuild exactly the acknowledged index
without signatures ever crossing a process boundary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.hasher import EntropyLearnedHasher
from repro.engine import HashEngine
from repro.service.adapters import StructureAdapter
from repro.similarity.index import LSHIndex, Neighbor
from repro.similarity.signatures import BBitMinHash
from repro.sketches.minhash import MinHashSignature, hasher_fingerprint

DEFAULT_NEIGHBORS = 10


def shingle_bytes(doc: bytes, width: int = 8) -> List[bytes]:
    """The distinct byte n-grams of a document (order preserved).

    Documents shorter than the window are their own single shingle, so
    every document — including the empty one — has a non-empty element
    set to sketch.
    """
    if len(doc) <= width:
        return [doc]
    return list(dict.fromkeys(
        doc[i:i + width] for i in range(len(doc) - width + 1)
    ))


class SimilarityAdapter(StructureAdapter):
    """One shard's near-duplicate index behind the batched facade.

    Mirrors :class:`~repro.service.adapters.FilterAdapter`'s degraded-
    mode discipline: the acked ``(key, document)`` map is the source of
    truth, and ``fall_back``/``restore_partial_key`` rebuild every
    signature and the whole index under the full-key / pristine
    element hasher respectively — no stored item is ever lost to a
    hasher swap.
    """

    backend = "similarity"
    supported = frozenset({"get", "put", "delete", "contains", "similar"})
    monitorable = False

    def __init__(
        self,
        hasher: EntropyLearnedHasher,
        capacity: int,
        bands: int = 8,
        rows: int = 4,
        b: int = 8,
        shingle_width: int = 8,
        band_hasher: Optional[EntropyLearnedHasher] = None,
    ):
        super().__init__()
        self.capacity = capacity
        self.bands = bands
        self.rows = rows
        self.b = b
        self.k = bands * rows
        self.shingle_width = shingle_width
        self._pristine_hasher = hasher
        # The band hasher survives rebuilds: band keys are packed
        # signature bytes, not raw keys, so a fallback of the *element*
        # hasher does not invalidate it.
        self._band_hasher = band_hasher
        self._members: Dict[bytes, bytes] = {}
        self._install(hasher)

    def _install(self, hasher: EntropyLearnedHasher) -> None:
        """Point the sketching pipeline at ``hasher`` with a fresh
        engine and an empty index."""
        self._element_hasher = hasher
        self._element_engine = HashEngine(hasher)
        self._fingerprint = hasher_fingerprint(hasher)
        self.index = LSHIndex(
            self.bands, self.rows, self.b,
            hasher=self._band_hasher, seed=hasher.seed,
        )

    # ---------------------------------------------------------- sketching

    def signature_of(self, doc: bytes) -> BBitMinHash:
        """Sketch one document: shingle, k MinHash rows, b-bit truncate.

        Bit-identical to ``BBitMinHash.from_items(hasher, shingles,
        ...)`` — the shared engine only amortizes plan compilation, the
        per-row seed override keeps the minima exactly the scalar
        construction's.
        """
        items = shingle_bytes(doc, self.shingle_width)
        hasher = self._element_hasher
        mins = np.empty(self.k, dtype=np.uint64)
        for row in range(self.k):
            mins[row] = self._element_engine.hash_batch(
                items, seed=hasher.seed + row + 1
            ).min()
        return BBitMinHash.from_signature(
            MinHashSignature(mins, fingerprint=self._fingerprint),
            self.b, bands=self.bands,
        )

    # -------------------------------------------------------- batch paths

    def get_batch(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        return [self._members.get(key) for key in keys]

    def put_batch(self, keys, values) -> Optional[List[bool]]:
        # Newest-wins within the batch: a key put twice in one segment
        # keeps only its last document (matching the journal's
        # newest-wins compaction), and its old signature leaves the
        # index before the new one lands.
        pending: Dict[bytes, bytes] = {}
        for key, value in zip(keys, values):
            pending[key] = value if value is not None else b""
        fresh = list(pending)
        for key in fresh:
            if key in self._members:
                self.index.remove(key)
            self._members[key] = pending[key]
        self.index.insert_batch(
            fresh, [self.signature_of(pending[key]) for key in fresh]
        )
        return None

    def delete_batch(self, keys: Sequence[bytes]) -> List[Optional[bool]]:
        results: List[Optional[bool]] = []
        for key in keys:
            present = key in self._members
            if present:
                del self._members[key]
                self.index.remove(key)
            results.append(present)
        return results

    def contains_batch(self, keys: Sequence[bytes]) -> List[bool]:
        return [key in self._members for key in keys]

    @staticmethod
    def _parse_k(payload: Optional[bytes]) -> int:
        """The neighbor count riding in ``request.value`` (ASCII int)."""
        if not payload:
            return DEFAULT_NEIGHBORS
        try:
            return max(0, int(payload.decode("ascii")))
        except (ValueError, UnicodeDecodeError):
            return DEFAULT_NEIGHBORS

    def similar_batch(
        self,
        keys: Sequence[bytes],
        payloads: Sequence[Optional[bytes]],
    ) -> List[Optional[List[Neighbor]]]:
        """Top-k neighbors per key; None marks an unknown query key.

        The queried item itself is excluded from its own answer.  Band
        hashing across the whole segment is batched through the index.
        """
        ks = [self._parse_k(payload) for payload in payloads]
        out: List[Optional[List[Neighbor]]] = [None] * len(keys)
        live = [
            (i, key) for i, key in enumerate(keys)
            if key in self.index.signatures
        ]
        if not live:
            return out
        results = self.index.query_batch(
            [self.index.signatures[key] for _, key in live],
            [ks[i] for i, _ in live],
            excludes=[key for _, key in live],
        )
        for (i, _), neighbors in zip(live, results):
            out[i] = neighbors
        return out

    # ------------------------------------------------------ degraded mode

    @property
    def tripped(self) -> bool:
        return self._degraded

    @property
    def engine(self):
        """The band-hash engine (the element engine is per-signature)."""
        return self.index.engine

    def _rebuild(self, hasher: EntropyLearnedHasher) -> None:
        self._install(hasher)
        if self._members:
            items = list(self._members.items())
            self.index.insert_batch(
                [key for key, _ in items],
                [self.signature_of(doc) for _, doc in items],
            )

    def fall_back(self) -> None:
        if self._degraded:
            return
        self._rebuild(EntropyLearnedHasher.full_key(
            self._pristine_hasher.base, seed=self._pristine_hasher.seed
        ))
        self._degraded = True

    def force_trip(self) -> None:
        self.fall_back()

    def restore_partial_key(self) -> None:
        if not self._degraded:
            return
        self._rebuild(self._pristine_hasher)
        self._degraded = False

    # -------------------------------------------------------------- stats

    def stats(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "fell_back": self.tripped,
            "size": len(self._members),
            "index": self.index.stats(),
        }

    def __len__(self) -> int:
        return len(self._members)


__all__ = ["SimilarityAdapter", "shingle_bytes", "DEFAULT_NEIGHBORS"]
