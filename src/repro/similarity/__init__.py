"""Similarity-search serving: b-bit MinHash + LSH banding.

Three layers, bottom-up:

* :mod:`repro.similarity.signatures` — :class:`BBitMinHash`, a k-row
  MinHash truncated to b bits per row with a Pb-Hash partitioned packed
  layout and the unbiased collision-floor-corrected Jaccard estimator;
* :mod:`repro.similarity.index` — :class:`LSHIndex`, banding the b-bit
  signature into r-row bands hashed through ``engine.hash_batch`` and
  answering top-k queries by candidate union + exact re-rank;
* :mod:`repro.similarity.adapter` — :class:`SimilarityAdapter`, the
  sixth service backend (``backend="similarity"``), serving the
  ``similar`` verb end-to-end through the sharded service, the network
  front door, and journal-replayed crash recovery.
"""

from repro.similarity.adapter import (
    DEFAULT_NEIGHBORS,
    SimilarityAdapter,
    shingle_bytes,
)
from repro.similarity.index import LSHIndex, Neighbor
from repro.similarity.signatures import (
    BBitMinHash,
    collision_floor,
    standard_error,
)

__all__ = [
    "BBitMinHash",
    "DEFAULT_NEIGHBORS",
    "LSHIndex",
    "Neighbor",
    "SimilarityAdapter",
    "collision_floor",
    "shingle_bytes",
    "standard_error",
]
