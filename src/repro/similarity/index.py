"""LSH banding index over b-bit MinHash signatures.

The standard banding construction: split a k-row signature into
``bands`` partitions of ``rows`` rows each; two items become candidates
when *any* band matches exactly.  For true Jaccard similarity J the
per-band match probability is ``J^rows`` (up to the b-bit collision
floor), so the candidate probability is ``1 - (1 - J^rows)^bands`` —
an S-curve whose midpoint sits near

    threshold ≈ (1 / bands) ** (1 / rows)

which is the tunable the constructor exposes: more rows per band →
higher threshold (fewer, closer candidates); more bands → lower.

Band keys are hashed through one shared :class:`~repro.engine.HashEngine`
— per-band seeds reuse a single compiled plan, exactly like the MinHash
rows themselves — and the hasher may be *entropy-learned*: because the
Pb-Hash layout keeps every band's bits in its own contiguous block, a
partial-key hasher over the serialized signature bytes reads only the
learned positions of each block.  Queries are answered by candidate
union over the bands followed by an exact b-bit signature re-rank
(deterministic tie-break on the item key), so band-hash collisions can
only ever *add* candidates, never change the score of a true one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.hasher import EntropyLearnedHasher
from repro.engine import HashEngine
from repro.similarity.signatures import BBitMinHash

# One scored neighbor: (item key, estimated Jaccard similarity).
Neighbor = Tuple[bytes, float]


class LSHIndex:
    """Banded LSH over b-bit signatures with batched insert/query."""

    def __init__(
        self,
        bands: int = 8,
        rows: int = 4,
        b: int = 8,
        hasher: Optional[EntropyLearnedHasher] = None,
        seed: int = 0,
    ):
        if bands < 1:
            raise ValueError(f"bands must be >= 1, got {bands}")
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        self.bands = bands
        self.rows = rows
        self.b = b
        self.k = bands * rows
        if hasher is None:
            hasher = EntropyLearnedHasher.full_key("xxh3", seed=seed)
        self.engine = HashEngine(hasher)
        self._seed = hasher.seed
        # Per band: band-key hash -> set of item keys in that bucket.
        self.buckets: List[Dict[int, Set[bytes]]] = [
            {} for _ in range(bands)
        ]
        self.signatures: Dict[bytes, BBitMinHash] = {}
        self.inserts = 0
        self.removes = 0
        self.queries = 0

    @property
    def threshold(self) -> float:
        """The similarity where candidate probability crosses ~50%."""
        return (1.0 / self.bands) ** (1.0 / self.rows)

    # ----------------------------------------------------------- plumbing

    def _check_signature(self, sig: BBitMinHash) -> None:
        if sig.bands != self.bands or sig.rows != self.rows or sig.b != self.b:
            raise ValueError(
                f"signature layout (bands={sig.bands}, rows={sig.rows}, "
                f"b={sig.b}) does not match index (bands={self.bands}, "
                f"rows={self.rows}, b={self.b})"
            )

    def _band_hashes(self, sigs: Sequence[BBitMinHash]) -> List[List[int]]:
        """Per band, the bucket hash of every signature's band block.

        One ``hash_batch`` per band over all signatures: band i's seed
        is ``seed + i + 1``, reusing the engine's single compiled plan
        the same way MinHash rows reuse theirs.
        """
        out: List[List[int]] = []
        for band in range(self.bands):
            block_keys = [sig.band_bytes(band) for sig in sigs]
            hashes = self.engine.hash_batch(
                block_keys, seed=self._seed + band + 1
            )
            out.append([int(h) for h in hashes])
        return out

    # ------------------------------------------------------------- insert

    def insert_batch(
        self, keys: Sequence[bytes], sigs: Sequence[BBitMinHash]
    ) -> None:
        """Insert many (key, signature) pairs; existing keys must be
        removed first (the caller owns key uniqueness)."""
        if len(keys) != len(sigs):
            raise ValueError("keys and signatures must have equal length")
        if not keys:
            return
        for sig in sigs:
            self._check_signature(sig)
        for band, hashes in enumerate(self._band_hashes(sigs)):
            bucket = self.buckets[band]
            for key, h in zip(keys, hashes):
                bucket.setdefault(h, set()).add(key)
        for key, sig in zip(keys, sigs):
            self.signatures[key] = sig
        self.inserts += len(keys)

    def insert(self, key: bytes, sig: BBitMinHash) -> None:
        self.insert_batch([key], [sig])

    def remove(self, key: bytes) -> bool:
        """Remove one item; True when it was present."""
        sig = self.signatures.pop(key, None)
        if sig is None:
            return False
        for band, hashes in enumerate(self._band_hashes([sig])):
            bucket = self.buckets[band]
            members = bucket.get(hashes[0])
            if members is not None:
                members.discard(key)
                if not members:
                    del bucket[hashes[0]]
        self.removes += 1
        return True

    # -------------------------------------------------------------- query

    def candidates(self, sig: BBitMinHash) -> Set[bytes]:
        """The banding candidate set: items sharing >= 1 band bucket."""
        self._check_signature(sig)
        out: Set[bytes] = set()
        for band, hashes in enumerate(self._band_hashes([sig])):
            out |= self.buckets[band].get(hashes[0], set())
        return out

    def query_batch(
        self,
        sigs: Sequence[BBitMinHash],
        ks: Sequence[int],
        excludes: Optional[Sequence[Optional[bytes]]] = None,
    ) -> List[List[Neighbor]]:
        """Top-k neighbors for each query signature.

        Band hashing is batched (one engine pass per band over all
        queries); each query then unions its candidate buckets and
        re-ranks them by exact b-bit Jaccard, breaking ties on the item
        key so results are deterministic regardless of set order.
        """
        if not sigs:
            return []
        for sig in sigs:
            self._check_signature(sig)
        if excludes is None:
            excludes = [None] * len(sigs)
        per_band = self._band_hashes(sigs)
        results: List[List[Neighbor]] = []
        for i, (sig, k, exclude) in enumerate(zip(sigs, ks, excludes)):
            cands: Set[bytes] = set()
            for band in range(self.bands):
                cands |= self.buckets[band].get(per_band[band][i], set())
            if exclude is not None:
                cands.discard(exclude)
            scored = [
                (key, self.signatures[key].jaccard(sig)) for key in cands
            ]
            scored.sort(key=lambda pair: (-pair[1], pair[0]))
            results.append(scored[:max(0, int(k))])
        self.queries += len(sigs)
        return results

    def query(
        self, sig: BBitMinHash, k: int, exclude: Optional[bytes] = None
    ) -> List[Neighbor]:
        return self.query_batch([sig], [k], [exclude])[0]

    # -------------------------------------------------------------- stats

    def stats(self) -> Dict[str, object]:
        bucket_counts = [len(bucket) for bucket in self.buckets]
        return {
            "items": len(self.signatures),
            "bands": self.bands,
            "rows": self.rows,
            "b": self.b,
            "threshold": self.threshold,
            "buckets": sum(bucket_counts),
            "inserts": self.inserts,
            "removes": self.removes,
            "queries": self.queries,
        }

    def __len__(self) -> int:
        return len(self.signatures)

    def __contains__(self, key: bytes) -> bool:
        return key in self.signatures


__all__ = ["LSHIndex", "Neighbor"]
