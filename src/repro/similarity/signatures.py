"""b-bit MinHash signatures (Li & König; Pb-Hash partitioned layout).

A classic MinHash signature stores k full 64-bit minima.  For
resemblance estimation most of those bits are wasted: two sets with
Jaccard similarity J agree on a minimum with probability J, and
*disagreeing* minima are (near-)uniform random values — so keeping only
the lowest b bits of each minimum preserves almost all of the signal at
1/64th .. 1/8th of the storage and compare cost.  The price is a
collision floor: two unequal minima still agree on their low b bits
with probability ``2^-b``, which the estimator below corrects for
exactly (Li & König, "b-bit minwise hashing"):

    E[m] = C + (1 - C) * J      with C = 2^-b
    Ĵ    = (m - C) / (1 - C)    (unbiased, clipped to [0, 1])

where m is the fraction of agreeing truncated rows.  The variance of m
is binomial, so the estimator's standard error is

    se(Ĵ) = sqrt(p (1 - p) / k) / (1 - C)     with p = C + (1 - C) J

— the ``1/(1-C)`` inflation is the only accuracy cost of truncation,
and it vanishes quickly in b (1.07x at b=4, 1.004x at b=8).

Storage follows the Pb-Hash partitioned layout: the k truncated rows
are grouped into ``bands`` partitions and each partition's ``rows * b``
bits pack into their own contiguous byte block.  A band's block is
therefore a self-contained byte string — exactly the band key the LSH
index hashes through ``engine.hash_batch`` — without re-packing or
cross-band bit arithmetic at query time.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro._util import Key
from repro.core.hasher import EntropyLearnedHasher
from repro.sketches.minhash import Fingerprint, MinHashSignature


def collision_floor(b: int) -> float:
    """The probability two *unequal* minima agree on their low b bits."""
    return 2.0 ** -b


def standard_error(b: int, k: int, jaccard: float = 0.5) -> float:
    """Standard error of the b-bit estimator at a given true Jaccard.

    Defaults to J = 0.5, the worst case of the binomial variance, so
    the no-argument form is a safe bound for any pair of sets.
    """
    if not 1 <= b <= 16:
        raise ValueError(f"b must be in [1, 16], got {b}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    c = collision_floor(b)
    p = c + (1.0 - c) * jaccard
    return math.sqrt(p * (1.0 - p) / k) / (1.0 - c)


class BBitMinHash:
    """A k-row MinHash signature truncated to b bits per row.

    >>> h = EntropyLearnedHasher.full_key("xxh3")
    >>> a = BBitMinHash.from_items(h, [b"x", b"y", b"z"], k=64, b=8)
    >>> b_ = BBitMinHash.from_items(h, [b"x", b"y", b"w"], k=64, b=8)
    >>> 0.0 <= a.jaccard(b_) <= 1.0
    True
    """

    def __init__(
        self,
        bits: np.ndarray,
        b: int,
        bands: int = 1,
        fingerprint: Optional[Fingerprint] = None,
    ):
        if not 1 <= b <= 16:
            raise ValueError(f"b must be in [1, 16], got {b}")
        bits = np.asarray(bits)
        k = int(bits.shape[0])
        if k <= 0:
            raise ValueError("signature needs at least one row")
        if bands < 1 or k % bands != 0:
            raise ValueError(
                f"bands must divide k evenly: k={k}, bands={bands}"
            )
        mask = (1 << b) - 1
        self.bits = (bits.astype(np.uint64) & np.uint64(mask)).astype(
            np.uint16
        )
        self.b = b
        self.bands = bands
        self.rows = k // bands
        self.fingerprint = fingerprint
        self._packed: Optional[np.ndarray] = None

    # ------------------------------------------------------- construction

    @classmethod
    def from_signature(
        cls, signature: MinHashSignature, b: int, bands: int = 1
    ) -> "BBitMinHash":
        """Truncate a full 64-bit signature to its low b bits per row."""
        return cls(
            signature.mins, b, bands=bands,
            fingerprint=signature.fingerprint,
        )

    @classmethod
    def from_items(
        cls,
        hasher: EntropyLearnedHasher,
        items: Sequence[Key],
        k: int = 128,
        b: int = 8,
        bands: int = 1,
    ) -> "BBitMinHash":
        """Build directly from a set of elements (k batched passes)."""
        return cls.from_signature(
            MinHashSignature.from_items(hasher, items, k=k), b, bands=bands
        )

    # --------------------------------------------------------- estimation

    @property
    def k(self) -> int:
        return int(self.bits.shape[0])

    def _check_comparable(self, other: "BBitMinHash") -> None:
        if (self.bits.shape != other.bits.shape or self.b != other.b
                or self.bands != other.bands):
            raise ValueError(
                "signatures must have equal (k, b, bands): "
                f"({self.k}, {self.b}, {self.bands}) vs "
                f"({other.k}, {other.b}, {other.bands})"
            )
        if (self.fingerprint is not None
                and other.fingerprint is not None
                and self.fingerprint != other.fingerprint):
            raise ValueError(
                "signatures were built with different hashers: "
                f"{self.fingerprint} vs {other.fingerprint}"
            )

    def jaccard(self, other: "BBitMinHash") -> float:
        """Unbiased Jaccard estimate, correcting the 2^-b floor."""
        self._check_comparable(other)
        m = float((self.bits == other.bits).mean())
        c = collision_floor(self.b)
        return min(1.0, max(0.0, (m - c) / (1.0 - c)))

    def standard_error(self, jaccard: float = 0.5) -> float:
        return standard_error(self.b, self.k, jaccard)

    # --------------------------------------------- packed (Pb-Hash) layout

    @property
    def block_bytes(self) -> int:
        """Bytes per band block: ``ceil(rows * b / 8)``."""
        return (self.rows * self.b + 7) // 8

    @property
    def packed(self) -> np.ndarray:
        """All band blocks concatenated: ``bands * block_bytes`` bytes.

        Each band's rows pack MSB-first into its own block, padded with
        zero bits to the byte boundary, so every block is independently
        addressable (the partitioned layout).
        """
        if self._packed is None:
            block = self.block_bytes
            out = np.zeros(self.bands * block, dtype=np.uint8)
            shifts = np.arange(self.b - 1, -1, -1, dtype=np.uint16)
            for band in range(self.bands):
                rows = self.bits[band * self.rows:(band + 1) * self.rows]
                bitmat = (
                    (rows[:, None] >> shifts) & np.uint16(1)
                ).astype(np.uint8).ravel()
                packed = np.packbits(bitmat)
                out[band * block:band * block + packed.shape[0]] = packed
            self._packed = out
        return self._packed

    def band_bytes(self, band: int) -> bytes:
        """One band's packed block — the LSH band key for this item."""
        if not 0 <= band < self.bands:
            raise IndexError(f"band {band} out of range [0, {self.bands})")
        block = self.block_bytes
        return self.packed[band * block:(band + 1) * block].tobytes()

    def to_bytes(self) -> bytes:
        """The full serialized signature (every band block, in order)."""
        return self.packed.tobytes()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BBitMinHash):
            return NotImplemented
        return (self.b == other.b and self.bands == other.bands
                and self.bits.shape == other.bits.shape
                and bool((self.bits == other.bits).all()))

    def __repr__(self) -> str:
        return (
            f"BBitMinHash(k={self.k}, b={self.b}, bands={self.bands}, "
            f"rows={self.rows})"
        )


__all__ = ["BBitMinHash", "collision_floor", "standard_error"]
