"""`repro.faults` — deterministic, seeded fault injection.

The fault plane is the adversary the serving layer must survive: a
:class:`FaultPlan` declares *what* breaks (worker crash, worker stall,
batch-result drop, hasher corruption, queue-slot loss), *where* (which
shard), and *when* (after how many opportunities, how many times); a
:class:`FaultPlane` turns the plan plus a seed into deterministic
firing decisions at injection points threaded through
``repro.service`` and ``repro.engine``.  The healing machinery —
:class:`~repro.service.supervisor.Supervisor`, per-shard op journals,
per-shard circuit breakers, and client deadlines — must keep every
acknowledged write and terminate every ticket *without* looking at the
plane; the ``chaos`` fuzz target proves it does.
"""

from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.plane import (
    CORRUPTION_DISPLACEMENT,
    FaultPlane,
    InjectedCrash,
    InjectedFault,
    make_plane,
)

__all__ = [
    "CORRUPTION_DISPLACEMENT",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultPlane",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "make_plane",
]
