"""Declarative fault plans: what breaks, where, when, and how often.

A :class:`FaultPlan` is a JSON-safe list of :class:`FaultSpec` entries.
Each spec names one *kind* of fault, the shard it targets, how many
opportunities to skip before arming (``after``), how many times it
fires (``count``), and an optional probability per opportunity
(``rate`` — evaluated with the :class:`~repro.faults.plane.FaultPlane`'s
seeded RNG, so a plan plus a seed is fully deterministic).

The seven kinds map onto the injection points threaded through the
service and the engine:

=============  ======================  =======================================
kind           injection point         effect
=============  ======================  =======================================
``crash``      ``Worker.dispatch``     a mid-batch crash: inline workers raise
                                       :class:`InjectedCrash`; process-backend
                                       shard children ``os._exit`` for real
``sigkill``    ``Worker.dispatch``     a real ``SIGKILL`` to the shard child
                                       mid-batch (process execution); inline
                                       workers degrade it to ``crash``
``stall``      ``Worker.dispatch``     returns without draining the queue
``drop``       ``Worker.dispatch``     pops a batch, never answers its tickets
``corrupt``    ``HashEngine``          amplifies insert signals (entropy
                                       collapse as the CollisionMonitor sees
                                       it); filter/LSM/process shards trip
                                       directly
``queue_loss`` ``Service.submit`` /    an admitted ticket never reaches the
               ``ShardRouter``         shard queue (the slot is lost)
``drift``      key stream (driver)     the *workload* drifts: the driver
                                       rewrites keys so the bytes the deployed
                                       partial-key plan reads go constant
                                       (entropy moves elsewhere in the key);
                                       fired via ``should_fire`` by whoever
                                       owns the key stream, not by the service
=============  ======================  =======================================

Specs can also be parsed from compact CLI strings::

    crash:worker:2              # crash shard 2's worker once
    stall:worker:0:count=3      # stall shard 0 three pumps in a row
    corrupt:engine:1:after=5    # collapse shard 1's entropy signal later
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Sequence

FAULT_KINDS = (
    "crash", "sigkill", "stall", "drop", "corrupt", "queue_loss", "drift",
)

# Documentation-grade scope names accepted in spec strings; the kind
# alone determines the injection point, the scope just reads well.
_SCOPES = ("worker", "router", "engine", "service", "workload")


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: kind + target shard + firing schedule."""

    kind: str
    shard: int
    after: int = 0        # opportunities to skip before arming
    count: int = 1        # maximum number of fires
    rate: float = 1.0     # probability per armed opportunity

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {self.rate}")

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        return cls(
            kind=str(data["kind"]),
            shard=int(data["shard"]),
            after=int(data.get("after", 0)),
            count=int(data.get("count", 1)),
            rate=float(data.get("rate", 1.0)),
        )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a compact CLI spec: ``kind:scope:shard[:key=value...]``.

        >>> FaultSpec.parse("crash:worker:2")
        FaultSpec(kind='crash', shard=2, after=0, count=1, rate=1.0)
        >>> FaultSpec.parse("stall:worker:0:count=3:after=4").count
        3
        """
        parts = text.split(":")
        if len(parts) < 3:
            raise ValueError(
                f"bad fault spec {text!r}; expected kind:scope:shard"
                "[:key=value...]"
            )
        kind, scope = parts[0], parts[1]
        if scope not in _SCOPES:
            raise ValueError(
                f"bad fault scope {scope!r} in {text!r}; "
                f"choose from {_SCOPES}"
            )
        try:
            shard = int(parts[2])
        except ValueError:
            raise ValueError(
                f"bad shard {parts[2]!r} in fault spec {text!r}"
            ) from None
        extra: Dict[str, object] = {}
        for part in parts[3:]:
            if "=" not in part:
                raise ValueError(f"bad fault option {part!r} in {text!r}")
            key, _, value = part.partition("=")
            if key not in ("after", "count", "rate"):
                raise ValueError(f"unknown fault option {key!r} in {text!r}")
            extra[key] = float(value) if key == "rate" else int(value)
        return cls(kind=kind, shard=shard, **extra)


@dataclass
class FaultPlan:
    """An ordered collection of fault specs (JSON-safe)."""

    specs: List[FaultSpec]

    @classmethod
    def parse(cls, texts: Sequence[str]) -> "FaultPlan":
        return cls([FaultSpec.parse(text) for text in texts])

    @classmethod
    def from_dicts(cls, dicts: Sequence[Dict[str, object]]) -> "FaultPlan":
        return cls([FaultSpec.from_dict(d) for d in dicts])

    def to_dicts(self) -> List[Dict[str, object]]:
        return [spec.to_dict() for spec in self.specs]

    def kinds(self) -> List[str]:
        return sorted({spec.kind for spec in self.specs})

    def targets(self, kind: str) -> List[int]:
        """Shards targeted by any spec of ``kind``."""
        return sorted({s.shard for s in self.specs if s.kind == kind})

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)


__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan"]
