"""The fault plane: seeded, deterministic fault firing + bookkeeping.

A :class:`FaultPlane` owns a :class:`~repro.faults.plan.FaultPlan` and a
seeded RNG.  Injection points (in ``service/worker.py``,
``service/router.py``, ``service/service.py``, and
``engine/engine.py``) ask :meth:`FaultPlane.should_fire` whether the
armed fault of a given kind fires *now* for a given shard.  Every call
is an *opportunity*; a spec skips its first ``after`` opportunities,
then fires up to ``count`` times, each with probability ``rate`` drawn
from the plane's RNG — so the same plan + seed + op stream produces the
same faults, every run (that is what makes the chaos fuzz target
shrinkable).

The plane never heals anything.  It only breaks things and counts what
it broke (``stats()``); the healing side — supervisor, journals,
circuit breakers, client deadlines — lives in :mod:`repro.service` and
must win *without* peeking at the plane's internal state.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec

# Displacement added to one insert signal under a ``corrupt`` fault: an
# entropy collapse no monitor budget survives (same magnitude the
# force-trip drills use).
CORRUPTION_DISPLACEMENT = 1e9


class InjectedFault(RuntimeError):
    """Base class for exceptions raised by armed injection points."""


class InjectedCrash(InjectedFault):
    """A worker crashed mid-batch (injected)."""


class _SpecState:
    """Mutable firing state for one spec."""

    __slots__ = ("spec", "opportunities", "fires")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.opportunities = 0
        self.fires = 0

    @property
    def exhausted(self) -> bool:
        return self.fires >= self.spec.count


class FaultPlane:
    """Deterministic fault firing engine over a declarative plan."""

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = seed
        self._rng = random.Random(seed)
        self._states = [_SpecState(spec) for spec in plan.specs]
        # kind -> shard -> count, for stats and assertions.
        self.fired: Dict[str, Dict[int, int]] = {k: {} for k in FAULT_KINDS}
        self.routed: Dict[int, int] = {}

    # ------------------------------------------------------------- firing

    def should_fire(self, kind: str, shard: int) -> bool:
        """One opportunity for (kind, shard); True when a spec fires."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        for state in self._states:
            spec = state.spec
            if spec.kind != kind or spec.shard != shard or state.exhausted:
                continue
            state.opportunities += 1
            if state.opportunities <= spec.after:
                continue
            if spec.rate < 1.0 and self._rng.random() >= spec.rate:
                continue
            state.fires += 1
            shard_counts = self.fired[kind]
            shard_counts[shard] = shard_counts.get(shard, 0) + 1
            return True
        return False

    def arm(self, spec: FaultSpec) -> None:
        """Add one spec to a live plane (the chaos harness's ``inject``
        op uses this, so a shrinking run can delete faults one by one)."""
        self.plan.specs.append(spec)
        self._states.append(_SpecState(spec))

    def pending(self, kind: Optional[str] = None) -> int:
        """Fires still owed by un-exhausted specs (optionally one kind)."""
        return sum(
            state.spec.count - state.fires
            for state in self._states
            if kind is None or state.spec.kind == kind
        )

    # ------------------------------------------------ engine-level hook

    def insert_signal_hook(self, shard: int):
        """A per-shard hook for :attr:`HashEngine.fault_hook`.

        Wraps every insert's collision signal; while a ``corrupt`` spec
        for this shard fires, the displacement is amplified to an
        entropy collapse the CollisionMonitor must catch.
        """

        def hook(displacement: float) -> float:
            if self.should_fire("corrupt", shard):
                return displacement + CORRUPTION_DISPLACEMENT
            return displacement

        return hook

    # ---------------------------------------------- router-level hook

    def note_route(self, shard: int) -> None:
        """Routing observation point (threaded through ShardRouter)."""
        self.routed[shard] = self.routed.get(shard, 0) + 1

    def note_routes(self, counts) -> None:
        """Aggregated routing observation: one call per routed batch.

        ``counts[shard]`` is how many keys of the batch landed on that
        shard (the router's ``np.bincount`` output) — equivalent to
        ``note_route`` per key without the per-key Python loop.
        """
        for shard, count in enumerate(counts):
            count = int(count)
            if count:
                self.routed[shard] = self.routed.get(shard, 0) + count

    # -------------------------------------------------------------- stats

    def total_fired(self, kind: Optional[str] = None) -> int:
        kinds = [kind] if kind is not None else list(self.fired)
        return sum(sum(self.fired[k].values()) for k in kinds)

    def stats(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "specs": self.plan.to_dicts(),
            "fired": {
                kind: {str(s): c for s, c in counts.items()}
                for kind, counts in self.fired.items()
                if counts
            },
            "total_fired": self.total_fired(),
            "pending": self.pending(),
            "routed": {str(s): c for s, c in sorted(self.routed.items())},
        }

    def __repr__(self) -> str:
        return (f"FaultPlane(specs={len(self.plan)}, seed={self.seed}, "
                f"fired={self.total_fired()}, pending={self.pending()})")


def make_plane(
    specs: List[object], seed: int = 0
) -> FaultPlane:
    """Build a plane from CLI strings, dicts, or FaultSpec objects."""
    parsed: List[FaultSpec] = []
    for spec in specs:
        if isinstance(spec, FaultSpec):
            parsed.append(spec)
        elif isinstance(spec, str):
            parsed.append(FaultSpec.parse(spec))
        elif isinstance(spec, dict):
            parsed.append(FaultSpec.from_dict(spec))
        else:
            raise TypeError(f"cannot build a FaultSpec from {spec!r}")
    return FaultPlane(FaultPlan(parsed), seed=seed)


__all__ = [
    "CORRUPTION_DISPLACEMENT",
    "FaultPlane",
    "InjectedCrash",
    "InjectedFault",
    "make_plane",
]
