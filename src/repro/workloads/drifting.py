"""Drifting YCSB variant: the key distribution shifts mid-stream.

A :class:`DriftingWorkloadGenerator` wraps a stock
:class:`~repro.workloads.ycsb.WorkloadGenerator` and rewrites every key
it emits past a *drift point*: the bytes the deployed partial-key plan
reads are overwritten with a constant fill and the information that
lived there is moved to the key's tail
(:func:`~repro.drift.keys.drift_key`).  From the structure's point of
view the stream is the same mix, same skew, same per-key semantics —
but the entropy the plan was trained on has moved, which is exactly the
regime-change the drift detector of :mod:`repro.drift` must catch.

The drift point is expressed in emitted operations (``drift_after``),
so the pre-drift prefix establishes a healthy collision baseline before
the shift lands.  Because :func:`drift_key` is injective and
deterministic, a reference oracle driving the same generator sees the
same keys — correctness checks stay exact across the drift.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.drift.keys import DRIFT_FILL, drift_key
from repro.workloads.ycsb import Operation, WorkloadGenerator


class DriftingWorkloadGenerator:
    """A YCSB stream whose keys drift after ``drift_after`` operations.

    >>> gen = DriftingWorkloadGenerator(
    ...     [b"alphabet-%d" % i for i in range(8)], positions=[0],
    ...     word_size=2, mix="C", seed=1, drift_after=3)
    >>> ops = list(gen.operations(6))
    >>> [op.key.startswith(b"al") for op in ops]
    [True, True, True, False, False, False]
    >>> gen.drifted_ops
    3
    """

    def __init__(
        self,
        keys: Sequence[bytes],
        positions: Sequence[int],
        word_size: int = 8,
        drift_after: int = 0,
        fill: int = DRIFT_FILL,
        **ycsb_kwargs,
    ):
        if drift_after < 0:
            raise ValueError(f"drift_after must be >= 0, got {drift_after}")
        self.inner = WorkloadGenerator(keys, **ycsb_kwargs)
        self.positions = [int(p) for p in positions]
        self.word_size = int(word_size)
        self.drift_after = int(drift_after)
        self.fill = int(fill)
        self.emitted = 0
        self.drifted_ops = 0

    @property
    def drifting(self) -> bool:
        """Whether the next emitted operation will carry a drifted key."""
        return self.emitted >= self.drift_after

    def transform(self, key: bytes) -> bytes:
        """The post-drift key rewrite (public so oracles can mirror it)."""
        return drift_key(
            key, self.positions, word_size=self.word_size, fill=self.fill
        )

    def operations(self, n: int) -> Iterator[Operation]:
        """Yield ``n`` operations, drifting keys past the drift point."""
        for op in self.inner.operations(n):
            if self.drifting:
                op = Operation(
                    kind=op.kind,
                    key=self.transform(op.key),
                    value=op.value,
                    scan_length=op.scan_length,
                )
                self.drifted_ops += 1
            self.emitted += 1
            yield op


__all__ = ["DriftingWorkloadGenerator"]
