"""Operation-stream workload generation (YCSB-style).

Benchmarking a key-value store fairly needs reproducible *operation
streams*, not just key sets: read/update mixes, request-popularity skew,
scans.  This package generates streams in the style of the YCSB core
workloads so the kvstore benchmarks and examples exercise realistic
access patterns.
"""

from repro.workloads.drifting import DriftingWorkloadGenerator
from repro.workloads.ycsb import MIXES, Operation, WorkloadGenerator, run_workload

__all__ = [
    "DriftingWorkloadGenerator",
    "Operation",
    "WorkloadGenerator",
    "MIXES",
    "run_workload",
]
