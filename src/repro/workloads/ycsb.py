"""YCSB-core-style operation streams.

The canonical mixes:

========  ===========================  ==========================
workload  operations                    popularity distribution
========  ===========================  ==========================
A         50% read / 50% update        zipfian
B         95% read / 5% update         zipfian
C         100% read                    zipfian
D         95% read / 5% insert         latest (reads favour recent)
E         95% scan / 5% insert         zipfian (short scans)
F         50% read / 50% read-modify-write  zipfian
========  ===========================  ==========================

Plus a ``negative`` knob: the fraction of reads targeting keys that are
not in the store (the filter-bound path the paper's LSM motivation is
about), which stock YCSB lacks.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro._util import Key, as_bytes_list

MIXES: Dict[str, Dict[str, float]] = {
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.5, "rmw": 0.5},
}

OPERATION_KINDS = ("read", "update", "insert", "scan", "rmw")


@dataclass
class Operation:
    """One workload step."""

    kind: str
    key: bytes
    value: bytes = b""
    scan_length: int = 0


class _ZipfSampler:
    """Zipf(s)-ish sampler over ranks 0..n-1 via inverse CDF.

    ``s`` (theta) is the skew exponent: 0 is uniform, 0.99 is the
    stock-YCSB default, and values past 1 concentrate most of the mass
    on a handful of hot keys (the hot-shard stress for the service).
    """

    def __init__(self, n: int, rng: random.Random, s: float = 0.99):
        if s < 0.0:
            raise ValueError(f"zipf theta must be >= 0, got {s}")
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        total = 0.0
        self._cdf: List[float] = []
        for w in weights:
            total += w
            self._cdf.append(total)
        self._total = total
        self._rng = rng

    def sample(self) -> int:
        return bisect.bisect_left(self._cdf, self._rng.random() * self._total)


class WorkloadGenerator:
    """Deterministic operation streams over a key population.

    >>> gen = WorkloadGenerator([b"a", b"b", b"c"], mix="C", seed=1)
    >>> ops = list(gen.operations(5))
    >>> all(op.kind == "read" for op in ops)
    True
    """

    def __init__(
        self,
        keys: Sequence[Key],
        mix: str = "A",
        seed: int = 0,
        negative_fraction: float = 0.0,
        negative_keys: Optional[Sequence[Key]] = None,
        max_scan_length: int = 32,
        value_bytes: int = 32,
        zipf_theta: float = 0.99,
    ):
        self.keys = as_bytes_list(keys)
        if not self.keys:
            raise ValueError("need at least one key")
        if mix not in MIXES:
            raise ValueError(f"unknown mix {mix!r}; choose from {sorted(MIXES)}")
        if not 0.0 <= negative_fraction <= 1.0:
            raise ValueError("negative_fraction must be in [0, 1]")
        if negative_fraction > 0.0 and not negative_keys:
            raise ValueError("negative_fraction > 0 requires negative_keys")
        self.mix_name = mix
        self.mix = MIXES[mix]
        self.negative_fraction = negative_fraction
        self.negative_keys = as_bytes_list(negative_keys or [])
        self.max_scan_length = max_scan_length
        self.value_bytes = value_bytes
        self.zipf_theta = zipf_theta
        self._rng = random.Random(seed)
        self._zipf = _ZipfSampler(len(self.keys), self._rng, s=zipf_theta)
        self._insert_counter = 0

    def _pick_key(self, kind: str) -> bytes:
        rng = self._rng
        if kind == "read" and self.negative_fraction > 0.0:
            if rng.random() < self.negative_fraction:
                return rng.choice(self.negative_keys)
        if self.mix_name == "D" and rng.random() < 0.5:
            # "latest" flavour: bias toward the most recently inserted.
            back = min(len(self.keys) - 1, int(abs(rng.gauss(0, 10))))
            return self.keys[len(self.keys) - 1 - back]
        return self.keys[self._zipf.sample()]

    def _value(self) -> bytes:
        return self._rng.getrandbits(8 * self.value_bytes).to_bytes(
            self.value_bytes, "little"
        )

    def operations(self, n: int) -> Iterator[Operation]:
        """Yield ``n`` operations."""
        kinds = list(self.mix)
        weights = [self.mix[k] for k in kinds]
        rng = self._rng
        for _ in range(n):
            kind = rng.choices(kinds, weights=weights)[0]
            if kind == "insert":
                self._insert_counter += 1
                key = b"inserted-%08d" % self._insert_counter
                self.keys.append(key)
                yield Operation(kind, key, self._value())
            elif kind in ("update", "rmw"):
                yield Operation(kind, self._pick_key(kind), self._value())
            elif kind == "scan":
                yield Operation(
                    kind, self._pick_key(kind),
                    scan_length=rng.randrange(1, self.max_scan_length + 1),
                )
            else:
                yield Operation(kind, self._pick_key(kind))


def run_workload(store, operations: Iterator[Operation]) -> Dict[str, int]:
    """Drive an :class:`~repro.kvstore.store.LSMStore` with a stream.

    Returns per-kind operation counts.  ``rmw`` performs a read followed
    by an update of the same key (YCSB F); ``scan`` reads up to
    ``scan_length`` keys starting at the operation key.
    """
    counts: Dict[str, int] = {}
    for op in operations:
        counts[op.kind] = counts.get(op.kind, 0) + 1
        if op.kind == "read":
            store.get(op.key)
        elif op.kind in ("update", "insert"):
            store.put(op.key, op.value)
        elif op.kind == "rmw":
            current = store.get(op.key)
            store.put(op.key, (current or b"")[:8] + op.value)
        elif op.kind == "scan":
            end = op.key + b"\xff" * 4
            taken = 0
            for _ in store.scan(op.key, end):
                taken += 1
                if taken >= op.scan_length:
                    break
    return counts
