"""Background re-learning with flap protection.

The :class:`Relearner` owns one :class:`~repro.drift.detector.DriftDetector`
per shard (created lazily from the service's deployed
:class:`~repro.service.adapters.AdapterSpec`), is fed served keys through
the workers' ``drift_tap``, and is pumped from the Supervisor's ``adapt``
pass.  When a detector trips it re-runs the offline trainer
(``core.greedy.choose_bytes`` via ``core.trainer.train_model``) on the
union of the per-shard reservoir samples and decides between three
outcomes, in the spirit of "When Are Learned Models Better Than Hash
Functions" (PAPERS.md) — a learned plan only wins when its certified
entropy still covers the structure's requirement:

* **no-op** — the re-learned deployed positions are byte-identical to
  the running plan's: nothing to swap, suppress (flap guard);
* **stay** — the fresh sample cannot certify the required entropy with
  any partial key: keep serving (likely full-key after the monitor
  tripped) rather than swap to a plan that would trip again;
* **swap** — push the new model through ``Service.relearn_swap`` (zero
  downtime: between pumps nothing is in flight).

Flap protection: ``min_dwell`` pumps must pass after any stay/swap
decision before another is allowed, and no-op swaps are suppressed
outright.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro._util import next_power_of_two
from repro.core.entropy import entropy_confidence_lower_bound
from repro.core.partial_key import PartialKeyFunction
from repro.core.sizing import (
    entropy_for_chaining_table,
    entropy_for_probing_table,
)
from repro.core.trainer import EntropyModel, train_model
from repro.drift.detector import DriftDetector
from repro.tables.chaining import DEFAULT_MAX_LOAD as CHAINING_MAX_LOAD
from repro.tables.probing import DEFAULT_MAX_LOAD as PROBING_MAX_LOAD

RELEARN_BACKENDS = ("chaining", "probing")


def required_entropy_for_spec(spec) -> float:
    """The entropy requirement the deployed structure sizes against.

    Mirrors the tables' actual fresh-build sizing — power-of-two slot
    rounding times the max load — rather than the raw spec capacity.
    Certifying against the smaller raw number would approve plans the
    structure itself then refuses when it rounds its geometry up: the
    relearner swaps, every shard quietly deploys the full-key fallback,
    and the "recovered" service serves slower than before the drift.
    """
    if spec.backend == "chaining":
        buckets = next_power_of_two(max(spec.capacity, 2))
        return entropy_for_chaining_table(
            max(1, int(CHAINING_MAX_LOAD * buckets))
        )
    if spec.backend == "probing":
        slots = next_power_of_two(max(spec.capacity, 2))
        return entropy_for_probing_table(
            max(1, int(PROBING_MAX_LOAD * slots))
        )
    raise ValueError(
        f"relearn supports backends {RELEARN_BACKENDS}, got {spec.backend!r}"
    )


def certified_model(
    model: EntropyModel, leading_constant: float
) -> EntropyModel:
    """``model`` with its frontier replaced by confidence lower bounds.

    Every prefix's point-estimate entropy becomes its Section 3
    99%-confidence lower bound over the evaluation sample.  Deploying
    *this* model makes every downstream ``min_words_for_entropy`` call
    (spec -> engine -> hasher) read as many words as it takes for the
    *certified* entropy to clear the requirement — a plan whose point
    estimate squeaks past the bar but whose bound does not is escalated
    to the next prefix instead of deployed on optimism.  The bound is
    monotone in the estimate, so the certified frontier stays sorted
    and the escalation is exactly "smallest certified prefix".
    """
    result = model.result
    entropies = [
        entropy_confidence_lower_bound(
            estimate, result.eval_size, leading_constant=leading_constant
        )
        for estimate in result.entropies
    ]
    return replace(model, result=replace(result, entropies=entropies))


def deployed_plan(
    model: EntropyModel, required: float
) -> Tuple[Optional[PartialKeyFunction], float]:
    """(partial_key, claimed_entropy) the model deploys at ``required``.

    ``(None, 0.0)`` when the model falls back to full-key hashing —
    there is no partial plan to watch or to compare against.
    """
    num_words = model.result.min_words_for_entropy(required)
    if num_words is None:
        return None, 0.0
    return model.result.partial_key(num_words), model.result.entropy_at(num_words)


class Relearner:
    """Detector fleet + re-train/swap decision loop for one Service."""

    def __init__(
        self,
        service,
        window: int = 256,
        margin: float = 2.0,
        patience: int = 2,
        reservoir: int = 256,
        min_fill: float = 0.5,
        min_dwell: int = 64,
        min_sample: int = 64,
        confidence_constant: float = 20.0,
        seed: int = 0,
    ):
        if min_dwell < 0:
            raise ValueError(f"min_dwell must be >= 0, got {min_dwell}")
        if min_sample < 4:
            raise ValueError(f"min_sample must be >= 4, got {min_sample}")
        if confidence_constant <= 0:
            raise ValueError(
                f"confidence_constant must be > 0, got {confidence_constant}"
            )
        self.service = service
        self.window = int(window)
        self.margin = float(margin)
        self.patience = int(patience)
        self.reservoir = int(reservoir)
        self.min_fill = float(min_fill)
        self.min_dwell = int(min_dwell)
        self.min_sample = int(min_sample)
        # Leading constant of the paper's Section 3 confidence bound.
        # The paper's worst-case 400 needs ~400 * 2^(H/2) validation
        # samples to certify H bits — far beyond a per-shard reservoir —
        # and the paper itself notes it "looks conservative in practice"
        # and exposes it as a parameter; 20 certifies ~10 bits from a
        # few hundred recent keys while still refusing noise-level
        # samples.
        self.confidence_constant = float(confidence_constant)
        self.seed = int(seed)
        self._detectors: Dict[int, DriftDetector] = {}
        self._last_decision_pump: Optional[int] = None
        # Per-shard reservoir.seen at the last evaluated sample: a shard
        # whose count has not advanced since then saw no traffic at all,
        # and its reservoir describes a stream that stopped flowing.
        self._seen_at_decision: Dict[int, int] = {}
        # Decision counters (all surfaced through stats()).
        self.swaps = 0
        self.stay_decisions = 0
        self.noop_suppressed = 0
        self.dwell_suppressed = 0
        self.insufficient_sample = 0
        self.relearn_failures = 0
        self.stale_excluded = 0

    # ----------------------------------------------------------- plan view

    def _spec(self):
        return self.service._spec

    def _current_plan(self) -> Tuple[Optional[PartialKeyFunction], float]:
        spec = self._spec()
        if spec.model is None:
            return None, 0.0
        return deployed_plan(spec.model, required_entropy_for_spec(spec))

    def _detector_for(self, shard_id: int) -> Optional[DriftDetector]:
        detector = self._detectors.get(shard_id)
        if detector is not None:
            return detector
        partial_key, claimed = self._current_plan()
        if partial_key is None:
            return None
        detector = DriftDetector(
            partial_key=partial_key,
            claimed_entropy=claimed,
            window=self.window,
            margin=self.margin,
            patience=self.patience,
            reservoir=self.reservoir,
            min_fill=self.min_fill,
            seed=self.seed + shard_id,
        )
        self._detectors[shard_id] = detector
        return detector

    # --------------------------------------------------------------- stream

    def observe(self, shard_id: int, keys: Iterable[bytes]) -> None:
        """``drift_tap`` entry point: acked keys from one shard's segment."""
        detector = self._detector_for(shard_id)
        if detector is None:
            return
        for key in keys:
            detector.observe(key)

    # ------------------------------------------------------------ decisions

    def _union_sample(self) -> List[bytes]:
        """Pooled re-train sample from the *live* shards only.

        A drifted stream often concentrates: when the deployed bytes go
        low-entropy, every drifted key hashes alike and lands on one
        shard.  The idle shards' reservoirs still hold pre-drift keys —
        each the byte-for-byte twin of some drifted key over every
        in-range position — and pooling them caps the retrained entropy
        below certification forever.  A reservoir that observed nothing
        since the previous decision is therefore excluded: re-learning
        follows the stream that is actually flowing.
        """
        sample: List[bytes] = []
        for shard_id in sorted(self._detectors):
            reservoir = self._detectors[shard_id].reservoir
            snapshot = self._seen_at_decision.get(shard_id)
            if snapshot is not None and reservoir.seen <= snapshot:
                self.stale_excluded += 1
                continue
            sample.extend(reservoir.sample())
        # Distinct keys only: Algorithm R over a cycling served stream
        # parks the same key in several slots, and those duplicate
        # pairs read as collisions at every byte position.  Lemma 1
        # prices collisions over *distinct* stored keys, so duplicates
        # would crush both the re-trained entropy estimate and the
        # confidence bound's sample count for no informational gain.
        return list(dict.fromkeys(sample))

    def _snapshot_seen(self) -> None:
        for shard_id, detector in self._detectors.items():
            self._seen_at_decision[shard_id] = detector.reservoir.seen

    def _calm_all(self) -> None:
        for detector in self._detectors.values():
            detector.calm()

    def _rearm_all(self) -> None:
        partial_key, claimed = self._current_plan()
        if partial_key is None:
            self._detectors.clear()
            return
        for detector in self._detectors.values():
            detector.rearm(partial_key, claimed)

    def pump(self, pump_index: int) -> Optional[str]:
        """One decision step; returns the decision taken (or ``None``).

        Called from the Supervisor's ``adapt`` pass, i.e. between pumps:
        the two-phase barrier guarantees nothing is in flight, which is
        what makes the swap zero-downtime.
        """
        tripped = [
            shard_id
            for shard_id, detector in self._detectors.items()
            if detector.check()
        ]
        if not tripped:
            return None
        if (
            self._last_decision_pump is not None
            and pump_index - self._last_decision_pump < self.min_dwell
        ):
            self.dwell_suppressed += 1
            self._calm_all()
            return "dwell"
        sample = self._union_sample()
        self._snapshot_seen()
        if len(sample) < self.min_sample:
            self.insufficient_sample += 1
            self._calm_all()
            return "insufficient_sample"
        spec = self._spec()
        old_model = spec.model
        try:
            new_model = train_model(
                sample,
                base=old_model.base,
                word_size=old_model.result.word_size,
                fixed_dataset=True,
                seed=spec.seed,
            )
        except ValueError:
            self.relearn_failures += 1
            self._calm_all()
            return "relearn_failed"
        required = required_entropy_for_spec(spec)
        # What actually ships is the certified frontier: the swapped
        # plan reads the smallest prefix whose confidence lower bound —
        # not point estimate — clears the requirement, and the next
        # detector's claimed entropy is that finite, defensible bound.
        deploy_model = certified_model(new_model, self.confidence_constant)
        old_plan, _ = deployed_plan(old_model, required)
        new_plan, _ = deployed_plan(deploy_model, required)
        if (
            old_plan is not None
            and new_plan is not None
            and list(new_plan.positions) == list(old_plan.positions)
            and new_plan.word_size == old_plan.word_size
        ):
            # No-op swap suppression: identical deployed positions mean
            # the distribution still supports the running plan; swapping
            # would pay a full rehash for nothing (flap guard).
            self.noop_suppressed += 1
            self._calm_all()
            return "noop"
        if new_plan is None:
            # Stay: the drifted stream cannot certify a partial-key plan
            # for this structure size; the monitor's full-key fallback is
            # the correct steady state ("learned models only when they
            # beat the hash function").
            self.stay_decisions += 1
            self._last_decision_pump = pump_index
            self._calm_all()
            return "stay"
        self.service.relearn_swap(deploy_model)
        self.swaps += 1
        self._last_decision_pump = pump_index
        self._rearm_all()
        return "swap"

    # ----------------------------------------------------------------- misc

    def grow(self) -> None:
        """A shard split happened; new shards get detectors lazily."""

    def stats(self) -> dict:
        return {
            "window": self.window,
            "margin": self.margin,
            "patience": self.patience,
            "reservoir": self.reservoir,
            "min_dwell": self.min_dwell,
            "min_sample": self.min_sample,
            "swaps": self.swaps,
            "stay_decisions": self.stay_decisions,
            "noop_suppressed": self.noop_suppressed,
            "dwell_suppressed": self.dwell_suppressed,
            "insufficient_sample": self.insufficient_sample,
            "relearn_failures": self.relearn_failures,
            "stale_excluded": self.stale_excluded,
            "shards": {
                shard_id: detector.stats()
                for shard_id, detector in sorted(self._detectors.items())
            },
        }
