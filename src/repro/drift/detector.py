"""Per-shard drift detection with hysteresis.

A :class:`DriftDetector` watches one shard's key stream through the
deployed plan's own partial-key function ``L``: every observed key feeds
(a) a :class:`~repro.drift.window.SlidingWindowEntropy` over ``L``'s
subkeys, and (b) a :class:`~repro.drift.reservoir.ReservoirSample` of
the raw keys for a possible re-train.  The window's plug-in Rényi-2
estimate is the same quantity the insert-time CollisionMonitor's
displacement signal estimates (Lemma 1 relates both to ``2^-H2``), but
measured parent-side so it works identically for the inline and process
execution backends.

Hysteresis, both directions:

* a breach requires the window estimate to fall *strictly below*
  ``claimed - margin`` — sitting exactly on the boundary never trips;
* a trip requires ``patience`` *consecutive* breached checks — one
  healthy check resets the count, so a transient collision burst can't
  force a re-learn.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Set

from repro._util import Key, as_bytes
from repro.core.partial_key import PartialKeyFunction
from repro.drift.reservoir import ReservoirSample
from repro.drift.window import SlidingWindowEntropy


class DriftDetector:
    """Sliding-window entropy watchdog for one shard's deployed plan."""

    def __init__(
        self,
        partial_key: PartialKeyFunction,
        claimed_entropy: float,
        window: int = 256,
        margin: float = 2.0,
        patience: int = 2,
        reservoir: int = 256,
        min_fill: float = 0.5,
        seed: int = 0,
    ):
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if not 0.0 < min_fill <= 1.0:
            raise ValueError(f"min_fill must be in (0, 1], got {min_fill}")
        self.partial_key = partial_key
        self.claimed_entropy = float(claimed_entropy)
        self.margin = float(margin)
        self.patience = int(patience)
        self.min_fill = float(min_fill)
        self.window = SlidingWindowEntropy(window=window)
        self.reservoir = ReservoirSample(capacity=reservoir, seed=seed)
        # Sliding set of the distinct raw keys currently in the window,
        # kept in lockstep with the entropy ring (see observe()).
        self._raw_ring: Deque[bytes] = deque()
        self._raw_seen: Set[bytes] = set()
        self.duplicates_skipped = 0
        self.breaches = 0
        self.checks = 0
        self.trips = 0

    # ---------------------------------------------------------------- stream

    def observe(self, key: Key) -> None:
        """Feed one served key into the window and the reservoir.

        Repeats of a raw key already in the window are skipped: Lemma 1
        prices collisions over the stored key *set*, so a zipf-hot read
        stream hammering one key is not evidence of entropy loss — only
        *distinct* keys that agree on the plan's bytes are.  The raw
        ring advances in lockstep with the entropy window, so a hot key
        re-enters once its last occurrence ages out.
        """
        raw = as_bytes(key)
        if raw in self._raw_seen:
            self.duplicates_skipped += 1
            return
        self._raw_ring.append(raw)
        self._raw_seen.add(raw)
        self.window.add(self.partial_key.subkey(raw))
        if len(self._raw_ring) > self.window.window:
            gone = self._raw_ring.popleft()
            self._raw_seen.discard(gone)
        self.reservoir.add(raw)

    # ------------------------------------------------------------- decisions

    def check(self) -> bool:
        """One hysteresis step; True when the detector trips.

        Requires the window to be at least ``min_fill`` full — a nearly
        empty window's estimate is all variance.  The boundary is
        exclusive: an estimate of exactly ``claimed - margin`` is *not*
        a breach (satellite: hysteresis boundary cases).
        """
        fill = self.window.fill
        if fill < self.min_fill * self.window.window:
            return False
        self.checks += 1
        # A window of n keys can observe at most log2(C(n, 2)) bits (the
        # zero-collision estimate), so a plan whose claimed entropy
        # exceeds that ceiling — an all-distinct training set claims
        # +inf — is held to the ceiling instead: a collision-free window
        # is evidence *for* the claim, never a breach of it.
        claim = min(
            self.claimed_entropy, math.log2(fill * (fill - 1) / 2)
        )
        if self.window.entropy() < claim - self.margin:
            self.breaches += 1
        else:
            self.breaches = 0
        if self.breaches >= self.patience:
            self.trips += 1
            self.breaches = 0
            return True
        return False

    def calm(self) -> None:
        """Reset the breach streak (after a stay / suppressed decision)."""
        self.breaches = 0

    def rearm(
        self,
        partial_key: PartialKeyFunction,
        claimed_entropy: float,
    ) -> None:
        """Point the detector at a freshly swapped plan.

        The window is cleared (its subkeys were computed under the old
        ``L``); the reservoir is kept — recent raw keys stay
        representative regardless of which plan hashes them.
        """
        self.partial_key = partial_key
        self.claimed_entropy = float(claimed_entropy)
        self.window.reset()
        self._raw_ring.clear()
        self._raw_seen.clear()
        self.breaches = 0

    def stats(self) -> dict:
        return {
            "claimed_entropy": self.claimed_entropy,
            "margin": self.margin,
            "patience": self.patience,
            "breaches": self.breaches,
            "checks": self.checks,
            "trips": self.trips,
            "duplicates_skipped": self.duplicates_skipped,
            "window": self.window.stats(),
            "reservoir": self.reservoir.stats(),
        }


def make_detector(
    model,
    required_entropy: float,
    *,
    window: int = 256,
    margin: float = 2.0,
    patience: int = 2,
    reservoir: int = 256,
    min_fill: float = 0.5,
    seed: int = 0,
) -> Optional[DriftDetector]:
    """Detector for the plan ``model`` actually deploys at ``required_entropy``.

    Returns ``None`` when the model cannot reach the requirement with a
    partial key (the deployed hasher is full-key; there is no partial
    plan to watch).
    """
    num_words = model.result.min_words_for_entropy(required_entropy)
    if num_words is None:
        return None
    return DriftDetector(
        partial_key=model.result.partial_key(num_words),
        claimed_entropy=model.result.entropy_at(num_words),
        window=window,
        margin=margin,
        patience=patience,
        reservoir=reservoir,
        min_fill=min_fill,
        seed=seed,
    )
