"""Sliding-window Rényi-2 (collision) entropy estimation.

The offline trainer measures H2 once, on a static sample.  A serving
shard instead sees an endless stream whose distribution can *drift*: a
new dominant URL host, a changed key-length mix.  This module keeps the
paper's collision-probability estimator alive over a sliding window of
the most recent subkeys, in O(1) amortized time per observation — the
streaming analogue of ``core.entropy.estimate_renyi_entropy``, in the
spirit of the sliding-window collision (second-moment) estimators from
the range Rényi entropy query literature (see PAPERS.md).

The trick is the same falling-power identity the greedy selector uses:
with ``z_s`` the multiplicity of subkey ``s`` in the window, the number
of colliding pairs is ``c = sum_s C(z_s, 2)``, and adding one occurrence
of ``s`` changes ``c`` by exactly ``z_s`` (its count *before* the add),
while evicting one changes it by ``-z_s`` (its count *after* the
remove).  So a deque + a counts dict + one integer maintain the exact
window collision count, and

    H2_hat = -log2( c / C(n, 2) )

is the plug-in Rényi-2 estimate over the current window of ``n``
subkeys.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict


class SlidingWindowEntropy:
    """Exact collision-pair tracking over the last ``window`` subkeys.

    >>> w = SlidingWindowEntropy(window=4)
    >>> for s in (b"a", b"b", b"c", b"d"):
    ...     w.add(s)
    >>> w.colliding_pairs
    0
    >>> w.add(b"a"); w.add(b"a")   # evicts b"a", b"b" -> window a,c,d,a...
    >>> w.colliding_pairs >= 1
    True
    """

    def __init__(self, window: int = 256):
        if window < 4:
            raise ValueError(f"window must be >= 4, got {window}")
        self.window = int(window)
        self._ring: Deque[bytes] = deque()
        self._counts: Dict[bytes, int] = {}
        self._pairs = 0
        self.observed = 0  # lifetime observations, never decremented

    # ---------------------------------------------------------------- stream

    def add(self, subkey: bytes) -> None:
        """Observe one subkey; evicts the oldest once the window is full."""
        self.observed += 1
        count = self._counts.get(subkey, 0)
        self._pairs += count
        self._counts[subkey] = count + 1
        self._ring.append(subkey)
        if len(self._ring) > self.window:
            old = self._ring.popleft()
            remaining = self._counts[old] - 1
            if remaining:
                self._counts[old] = remaining
            else:
                del self._counts[old]
            self._pairs -= remaining

    def reset(self) -> None:
        """Forget the window contents (e.g. after a plan swap)."""
        self._ring.clear()
        self._counts.clear()
        self._pairs = 0

    # ------------------------------------------------------------- estimates

    @property
    def fill(self) -> int:
        """Subkeys currently in the window."""
        return len(self._ring)

    @property
    def colliding_pairs(self) -> int:
        """Exact ``sum_s C(z_s, 2)`` over the window."""
        return self._pairs

    def entropy(self) -> float:
        """Plug-in Rényi-2 estimate ``-log2(c / C(n,2))`` for the window.

        With zero colliding pairs the plug-in estimate is infinite; we
        report the optimistic resolution limit ``log2(C(n,2))`` instead
        — the largest entropy a window of this size can certify, which
        keeps the detector's comparison arithmetic finite.
        """
        n = len(self._ring)
        if n < 2:
            return math.inf
        total_pairs = n * (n - 1) // 2
        if self._pairs <= 0:
            return math.log2(total_pairs)
        return -math.log2(self._pairs / total_pairs)

    def stats(self) -> dict:
        return {
            "window": self.window,
            "fill": self.fill,
            "observed": self.observed,
            "colliding_pairs": self._pairs,
            "entropy": self.entropy(),
        }
