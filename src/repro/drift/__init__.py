"""`repro.drift` — online entropy re-learning under distribution drift.

Entropy-Learned Hashing bets that byte positions learned once keep their
entropy forever.  A drifting key distribution silently breaks that bet:
partial-key collisions climb until the CollisionMonitor trips to
full-key hashing — correct, but permanently slow.  This package closes
the loop back to partial-key speed:

* :class:`SlidingWindowEntropy` — O(1)/key exact collision-pair
  tracking over a window of subkeys, yielding a streaming Rényi-2
  estimate (the range-Rényi-entropy-query estimator, windowed);
* :class:`ReservoirSample` — epoch-reset Algorithm R so a re-train
  always sees *recent* keys;
* :class:`DriftDetector` — per-shard hysteresis watchdog (margin below
  the claimed entropy, ``patience`` consecutive breaches);
* :class:`Relearner` — detector fleet + re-train + relearn-vs-stay
  decision, wired into the Supervisor's ``adapt`` pass with flap
  protection (min-dwell pumps, no-op swap suppression);
* :func:`drift_key` — the injective entropy-collapsing key rewrite used
  by the ``drift`` fault kind, workloads, fuzzing, and benchmarks.

The swap itself is ``Service.relearn_swap``: a new
:class:`~repro.core.trainer.EntropyModel` pushed through
``engine.rearm`` + the generation counter on every shard of either
execution backend, with a journal checkpoint after each rehash.
"""

from repro.drift.detector import DriftDetector, make_detector
from repro.drift.keys import DRIFT_FILL, DRIFT_SEPARATOR, drift_key
from repro.drift.relearner import (
    RELEARN_BACKENDS,
    Relearner,
    deployed_plan,
    required_entropy_for_spec,
)
from repro.drift.reservoir import ReservoirSample
from repro.drift.window import SlidingWindowEntropy

__all__ = [
    "DRIFT_FILL",
    "DRIFT_SEPARATOR",
    "DriftDetector",
    "RELEARN_BACKENDS",
    "Relearner",
    "ReservoirSample",
    "SlidingWindowEntropy",
    "deployed_plan",
    "drift_key",
    "make_detector",
    "required_entropy_for_spec",
]
