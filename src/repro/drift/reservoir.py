"""Reservoir sampling of recent keys for background re-training.

Re-learning byte positions needs a *sample of the drifted stream*, not
of all history — a classic reservoir over the full lifetime would be
dominated by pre-drift keys and re-learn the stale plan.  We run
Algorithm R within bounded epochs: every ``epoch`` observations the
reservoir is cleared and refilled, so its contents always describe the
last O(epoch) keys while each epoch's sample stays uniform over that
epoch.
"""

from __future__ import annotations

import random
from typing import List


class ReservoirSample:
    """Epoch-reset Algorithm R over a stream of keys.

    >>> r = ReservoirSample(capacity=8, seed=0)
    >>> for i in range(100):
    ...     r.add(b"key-%d" % i)
    >>> 0 < len(r.sample()) <= 8
    True
    """

    def __init__(self, capacity: int = 256, seed: int = 0, epoch: int = 0):
        if capacity < 4:
            raise ValueError(f"capacity must be >= 4, got {capacity}")
        self.capacity = int(capacity)
        # Default epoch: four reservoir-fulls — old enough to smooth
        # noise, young enough that a drifted stream dominates quickly.
        self.epoch = int(epoch) if epoch else 4 * self.capacity
        if self.epoch < self.capacity:
            raise ValueError("epoch must be >= capacity")
        self._rng = random.Random(seed)
        self._items: List[bytes] = []
        self._seen_in_epoch = 0
        self.seen = 0  # lifetime observations
        self.epochs = 0

    def add(self, key: bytes) -> None:
        if self._seen_in_epoch >= self.epoch:
            self._items.clear()
            self._seen_in_epoch = 0
            self.epochs += 1
        self.seen += 1
        self._seen_in_epoch += 1
        if len(self._items) < self.capacity:
            self._items.append(key)
            return
        j = self._rng.randrange(self._seen_in_epoch)
        if j < self.capacity:
            self._items[j] = key

    def sample(self) -> List[bytes]:
        """A copy of the current reservoir contents."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "epoch": self.epoch,
            "fill": len(self._items),
            "seen": self.seen,
            "epochs": self.epochs,
        }
