"""Synthetic key-distribution drift.

``drift_key`` is the adversary the drift machinery exists to survive: an
*injective* rewrite of a key that destroys the entropy at a given set of
learned byte positions while moving it elsewhere.  The bytes every
selected word would read are captured, overwritten with a constant
fill, and re-appended after a separator — so two distinct keys always
remain distinct (lengths and tails differ exactly when the originals
did), but the learned partial key collapses to (length, fill, fill, …)
and partial-key collisions explode.

Used by the ``drift`` fault kind (the FaultPlane mutates the synthetic
key source mid-run), the drifting YCSB variant, the ``drift`` fuzz
target, and ``bench_drift``.
"""

from __future__ import annotations

from typing import Sequence

from repro._util import Key, as_bytes

DRIFT_SEPARATOR = b"~"
DRIFT_FILL = 0x7A  # 'z'


def drift_key(
    key: Key,
    positions: Sequence[int],
    word_size: int = 8,
    fill: int = DRIFT_FILL,
) -> bytes:
    """Collapse ``key``'s entropy at the given learned positions.

    Injective: the displaced bytes are appended after a separator, so
    the mapping key -> drifted key can lose no information.  Keys too
    short to reach any selected position are returned unchanged (they
    already take the full-key branch at hash time).

    >>> drift_key(b"abcdefgh", positions=[2], word_size=2)
    b'abzzefgh~cd'
    >>> a = drift_key(b"abcdefgh", positions=[2], word_size=2)
    >>> b = drift_key(b"abXYefgh", positions=[2], word_size=2)
    >>> a != b                      # injective ...
    True
    >>> a[:8] == b[:8]              # ... but identical at the positions
    True
    """
    raw = bytearray(as_bytes(key))
    displaced = []
    touched = False
    for pos in positions:
        segment = bytes(raw[pos:pos + word_size])
        if not segment:
            continue
        displaced.append(segment)
        for i in range(pos, min(pos + word_size, len(raw))):
            raw[i] = fill
        touched = True
    if not touched:
        return bytes(raw)
    return bytes(raw) + DRIFT_SEPARATOR + b"".join(displaced)
