"""Near-duplicate page detection served by the similarity backend.

Web crawlers estimate page resemblance by MinHashing shingle sets;
every shingle is hashed k times per page, making this one of the most
hash-intensive jobs in the pipeline.  This example ingests a corpus of
synthetic pages (some of them near-duplicates) into the sharded
service's ``similarity`` backend — b-bit MinHash signatures in an LSH
banding index — then asks ``similar(key, k)`` for each page's nearest
neighbours, and compares full-key vs Entropy-Learned hashing cost at
identical detection quality.

The service runs one shard here: ``similar`` answers from the queried
key's shard only (query locality is the design trade — see
docs/DESIGN.md), so a corpus whose duplicates may land anywhere wants
either one shard or a routing key shared by near-duplicate groups.

Run:  python examples/url_near_duplicates.py
"""

import random
import time

from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import train_model
from repro.datasets import wikipedia_text
from repro.service import Service, ServiceClient
from repro.similarity import shingle_bytes

NUM_PAGES = 60
NUM_DUPLICATE_PAIRS = 10
SIGNATURE_K = 96         # rows per signature = bands * ROWS
ROWS = 4                 # rows per band; bands = SIGNATURE_K // ROWS
SHINGLE_WIDTH = 32       # byte n-grams; the trained hasher reads 8 of these
THRESHOLD = 0.5          # planted pairs sit near Jaccard ~0.7 at this width
NEIGHBORS_K = 5


def make_corpus():
    """Pages keyed by random-prefixed ids, plus planted near-duplicates."""
    rng = random.Random(13)
    pages = {}
    keys = []
    for i in range(NUM_PAGES):
        key = b"%08x-page-%03d" % (rng.getrandbits(32), i)
        pages[key] = b" ".join(wikipedia_text(12, seed=100 + i, target_len=90))
        keys.append(key)
    truth = set()
    for j in range(NUM_DUPLICATE_PAIRS):
        victim = keys[rng.randrange(NUM_PAGES)]
        words = pages[victim].split()
        # Perturb ~3% of words: a near-duplicate, not a copy.
        for _ in range(max(1, len(words) // 33)):
            words[rng.randrange(len(words))] = b"edited"
        dup = b"%08x-dup-%03d" % (rng.getrandbits(32), j)
        pages[dup] = b" ".join(words)
        truth.add(tuple(sorted((victim, dup))))
    return pages, truth


def detect(pages, hasher):
    """Ingest every page, then query each key's neighbours. Pairs whose
    estimated Jaccard clears THRESHOLD are flagged as near-duplicates."""
    service = Service(
        num_shards=1, backend="similarity", hasher=hasher,
        capacity=2 * len(pages),
        backend_options={"bands": SIGNATURE_K // ROWS, "rows": ROWS,
                         "b": 8, "shingle_width": SHINGLE_WIDTH},
    )
    try:
        client = ServiceClient(service)
        start = time.perf_counter()
        client.put_many(list(pages.items()))
        found = set()
        for key in pages:
            for neighbor, score in client.similar(key, k=NEIGHBORS_K):
                if score >= THRESHOLD:
                    found.add(tuple(sorted((key, neighbor))))
        return found, time.perf_counter() - start
    finally:
        service.close()


def main():
    pages, truth = make_corpus()
    total_shingles = sum(len(shingle_bytes(p, SHINGLE_WIDTH))
                         for p in pages.values())
    print(f"{len(pages)} pages, {total_shingles} shingles, "
          f"{len(truth)} planted near-duplicate pairs "
          f"(k={SIGNATURE_K} permutations -> "
          f"{total_shingles * SIGNATURE_K} hashes per ingest)\n")

    sample = [s for p in list(pages.values())[:20]
              for s in shingle_bytes(p, SHINGLE_WIDTH)[:80]]
    model = train_model(sample, base="xxh3", seed=2, word_size=8)
    elh = model.hasher_for_entropy(12.0)

    results = {}
    for label, hasher in (
        ("full-key xxh3", EntropyLearnedHasher.full_key("xxh3")),
        ("entropy-learned", elh),
    ):
        found, seconds = detect(pages, hasher)
        recall = len(found & truth) / len(truth)
        precision = len(found & truth) / max(1, len(found))
        results[label] = (found, seconds)
        print(f"{label:>16}: {seconds:5.2f}s, recall {recall:.0%}, "
              f"precision {precision:.0%}, {len(found)} pairs flagged")

    speedup = results["full-key xxh3"][1] / results["entropy-learned"][1]
    print(f"\nSpeedup {speedup:.2f}x at matching detection quality "
          f"(ELH reads {elh.partial_key.bytes_read or 'all'} of "
          f"{SHINGLE_WIDTH} bytes/shingle)")


if __name__ == "__main__":
    main()
