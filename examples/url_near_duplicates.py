"""Near-duplicate page detection with MinHash — Broder's use case [15].

Web crawlers estimate page resemblance by MinHashing shingle sets; every
shingle is hashed k times per page, making this one of the most
hash-intensive jobs in the pipeline.  This example builds MinHash
signatures over token-shingle sets for a corpus of synthetic pages
(some of them near-duplicates), finds the duplicate pairs, and compares
full-key vs Entropy-Learned hashing cost at identical detection quality.

Run:  python examples/url_near_duplicates.py
"""

import random
import time

from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import train_model
from repro.datasets import wikipedia_text
from repro.sketches.minhash import MinHashSignature

NUM_PAGES = 60
NUM_DUPLICATE_PAIRS = 10
SIGNATURE_K = 96
THRESHOLD = 0.6  # planted pairs sit near Jaccard ~0.8


def shingles(text: bytes, width: int = 4):
    """Word 4-grams of a page, as a set of byte strings."""
    words = text.split()
    return {b" ".join(words[i:i + width]) for i in range(len(words) - width + 1)}


def make_corpus():
    rng = random.Random(13)
    pages = [b" ".join(wikipedia_text(12, seed=100 + i, target_len=90))
             for i in range(NUM_PAGES)]
    truth = set()
    for pair in range(NUM_DUPLICATE_PAIRS):
        victim = rng.randrange(len(pages))
        words = pages[victim].split()
        # Perturb ~3% of words: a near-duplicate, not a copy.
        for _ in range(max(1, len(words) // 33)):
            words[rng.randrange(len(words))] = b"edited"
        pages.append(b" ".join(words))
        truth.add((victim, len(pages) - 1))
    return pages, truth


def detect(pages, hasher):
    start = time.perf_counter()
    signatures = [
        MinHashSignature.from_items(hasher, sorted(shingles(p)), k=SIGNATURE_K)
        for p in pages
    ]
    found = set()
    for i in range(len(pages)):
        for j in range(i + 1, len(pages)):
            if signatures[i].jaccard(signatures[j]) >= THRESHOLD:
                found.add((i, j))
    return found, time.perf_counter() - start


def main():
    pages, truth = make_corpus()
    total_shingles = sum(len(shingles(p)) for p in pages)
    print(f"{len(pages)} pages, {total_shingles} shingles, "
          f"{len(truth)} planted near-duplicate pairs "
          f"(k={SIGNATURE_K} permutations -> "
          f"{total_shingles * SIGNATURE_K} hashes per pass)\n")

    sample = [s for p in pages[:20] for s in list(shingles(p))[:80]]
    model = train_model(sample, base="xxh3", seed=2, word_size=8)
    elh = model.hasher_for_entropy(14.0)

    results = {}
    for label, hasher in (
        ("full-key xxh3", EntropyLearnedHasher.full_key("xxh3")),
        ("entropy-learned", elh),
    ):
        found, seconds = detect(pages, hasher)
        recall = len(found & truth) / len(truth)
        precision = len(found & truth) / max(1, len(found))
        results[label] = (found, seconds)
        print(f"{label:>16}: {seconds:5.2f}s, recall {recall:.0%}, "
              f"precision {precision:.0%}, {len(found)} pairs flagged")

    speedup = results["full-key xxh3"][1] / results["entropy-learned"][1]
    print(f"\nSpeedup {speedup:.2f}x at matching detection quality "
          f"(ELH reads {elh.partial_key.bytes_read or 'all'} bytes/shingle)")


if __name__ == "__main__":
    main()
