"""File-block deduplication — the paper's large-key showcase (Section 6.6).

Deduplicating filesystems (ZFS [70, 76]) hash every block to find
duplicates.  Blocks are huge keys (here 8KB), and full-key hashing cost
is linear in block size — while a deduplication table over mostly-random
blocks needs only ``log2 n`` bits of entropy, which a couple of 8-byte
words already carry.  This is where Entropy-Learned Hashing's speedup is
unbounded: hash time becomes independent of block size.

The subtlety large keys introduce: *true duplicates* share every byte,
so partial-key hashing sends them to the same slot (good — that's what
dedup wants) and the full-block comparison confirms real duplicates
exactly as full-key hashing would.

Run:  python examples/dedupe_file_blocks.py
"""

import random
import time

from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import train_model
from repro.datasets import large_random_keys
from repro.tables.probing import LinearProbingTable

NUM_UNIQUE_BLOCKS = 1_500
BLOCK_SIZE = 8_192
DUPLICATE_RATE = 0.30


def make_block_stream():
    """A write stream where 30% of blocks repeat earlier content."""
    unique = large_random_keys(NUM_UNIQUE_BLOCKS, seed=5, key_len=BLOCK_SIZE)
    rng = random.Random(9)
    stream = []
    for block in unique:
        stream.append(block)
        while rng.random() < DUPLICATE_RATE:
            stream.append(rng.choice(stream))  # re-write of existing content
    rng.shuffle(stream)
    return stream, unique


def dedupe(stream, hasher):
    """Returns (unique blocks stored, duplicates found, seconds)."""
    table = LinearProbingTable(hasher, capacity=2 * NUM_UNIQUE_BLOCKS)
    duplicates = 0
    start = time.perf_counter()
    for block in stream:
        if table.get(block) is not None:
            duplicates += 1  # content already stored: reference it
        else:
            table.insert(block, True)
    return len(table), duplicates, time.perf_counter() - start


def main():
    stream, unique = make_block_stream()
    print(f"Write stream: {len(stream)} blocks of {BLOCK_SIZE} bytes, "
          f"{len(set(stream))} distinct")

    model = train_model(unique[:600], seed=2)
    elh = model.hasher_for_probing_table(NUM_UNIQUE_BLOCKS)
    print(f"ELH hasher reads {elh.partial_key.bytes_read} of "
          f"{BLOCK_SIZE} bytes per block\n")

    results = {}
    for label, hasher in (
        ("full-key wyhash", EntropyLearnedHasher.full_key("wyhash")),
        ("entropy-learned", elh),
    ):
        stored, duplicates, seconds = dedupe(stream, hasher)
        results[label] = (stored, duplicates, seconds)
        print(f"{label:>16}: {seconds:6.2f}s  "
              f"({seconds * 1e6 / len(stream):8.0f} us/block), "
              f"{stored} stored, {duplicates} duplicates found")

    full = results["full-key wyhash"]
    elh_result = results["entropy-learned"]
    assert full[:2] == elh_result[:2], "dedup decisions must be identical"
    print(f"\nIdentical dedup outcome; speedup {full[2] / elh_result[2]:.1f}x "
          "(grows without bound as blocks get larger)")


if __name__ == "__main__":
    main()
