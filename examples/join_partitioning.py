"""Partitioned hash join — the paper's relational-database motivation.

Hash joins and group-bys account for >50% of time on most TPC-H queries;
both stages are hashing-bound: radix-partition the inputs, then build
and probe per-partition hash tables.  This example joins two relations
on a URL key and runs the *entire* pipeline twice — with full-key
hashing and with Entropy-Learned hashing sized per Section 5 (relative
partition-variance regime for the partitioner, ``log2 n + 1`` bits for
the build tables) — verifying the join outputs match exactly.

Run:  python examples/join_partitioning.py
"""

import time

from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import train_model
from repro.datasets import hn_urls
from repro.partitioning.partitioner import Partitioner
from repro.partitioning.stats import relative_std
from repro.tables.chaining import SeparateChainingTable

NUM_PARTITIONS = 32
BUILD_ROWS = 12_000
PROBE_ROWS = 24_000


def hash_join(build_rows, probe_rows, partition_hasher, table_hasher_factory):
    """Radix-partition both sides, then per-partition build & probe."""
    partitioner = Partitioner(partition_hasher, NUM_PARTITIONS)
    build_parts = partitioner.partition([k for k, _ in build_rows], "positional")
    probe_parts = partitioner.partition([k for k, _ in probe_rows], "positional")

    matches = []
    for p in range(NUM_PARTITIONS):
        build_ids = build_parts.positions[p]
        table = SeparateChainingTable(
            table_hasher_factory(max(1, len(build_ids))),
            capacity=max(4, len(build_ids)),
        )
        for i in build_ids:
            key, payload = build_rows[i]
            table.insert(key, payload)
        for j in probe_parts.positions[p]:
            key, payload = probe_rows[j]
            hit = table.get(key)
            if hit is not None:
                matches.append((key, hit, payload))
    return matches, build_parts


def main():
    urls = hn_urls(BUILD_ROWS + 4_000, seed=31)
    build_rows = [(k, f"dim-{i}") for i, k in enumerate(urls[:BUILD_ROWS])]
    # Probe side: 60% matching keys, 40% misses, like a selective join.
    probe_keys = (urls[:int(PROBE_ROWS * 0.6)]
                  + urls[BUILD_ROWS:BUILD_ROWS + int(PROBE_ROWS * 0.4)])
    probe_rows = [(k, f"fact-{i}") for i, k in enumerate(probe_keys)]

    model = train_model([k for k, _ in build_rows][:4_000], base="crc32")

    configs = {
        "full-key": (
            EntropyLearnedHasher.full_key("crc32"),
            lambda n: EntropyLearnedHasher.full_key("wyhash"),
        ),
        "entropy-learned": (
            EntropyLearnedHasher(
                model.hasher_for_partitioning(BUILD_ROWS, NUM_PARTITIONS)
                .partial_key,
                base="crc32",
            ),
            lambda n: model.hasher_for_chaining_table(n),
        ),
    }

    results = {}
    for label, (partition_hasher, table_factory) in configs.items():
        start = time.perf_counter()
        matches, parts = hash_join(build_rows, probe_rows,
                                   partition_hasher, table_factory)
        elapsed = time.perf_counter() - start
        results[label] = (sorted(matches), elapsed, parts)
        print(f"{label:>16}: {elapsed:6.2f}s, {len(matches)} matches, "
              f"partition rel-std {relative_std(parts.counts):.3f}")

    full_matches, full_time, _ = results["full-key"]
    elh_matches, elh_time, _ = results["entropy-learned"]
    assert full_matches == elh_matches, "join outputs must be identical"
    print(f"\nIdentical join output; end-to-end speedup "
          f"{full_time / elh_time:.2f}x")


if __name__ == "__main__":
    main()
