"""LSM-tree filter push-down — the paper's key-value-store motivation.

An LSM store (think RocksDB) keeps immutable sorted runs on disk, each
guarded by a Bloom filter so point lookups skip runs that cannot contain
the key.  Filter probes are a CPU bottleneck: every lookup hashes the
key once per level.  The runs are *fixed datasets*, the best case for
Entropy-Learned Hashing (Section 3): the exact keys are known at build
time, so the byte selection needs no generalization margin.

This example builds a 4-level store of URL keys, trains one model on the
store's key distribution, gives every run an Entropy-Learned blocked
filter, and measures the end-to-end cost of negative point lookups (the
common case a filter exists for) against full-key xxh3 filters.

Run:  python examples/lsm_filter_pushdown.py
"""

import time

from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import train_model
from repro.datasets import google_urls
from repro.filters.blocked import BlockedBloomFilter

LEVEL_SIZES = (2_000, 4_000, 8_000, 16_000)
TARGET_FPR = 0.01
ALLOWED_INCREASE = 0.005


class LsmStore:
    """Minimal LSM read path: newest level first, filter before 'disk'."""

    def __init__(self, levels, filters):
        self.levels = levels  # list of dict key -> value ("the run")
        self.filters = filters
        self.filter_negatives = 0
        self.run_reads = 0

    def get(self, key):
        for run, bloom in zip(self.levels, self.filters):
            if not bloom.contains(key):
                self.filter_negatives += 1
                continue
            self.run_reads += 1  # a real store would hit disk here
            if key in run:
                return run[key]
        return None


def build_store(keys, hasher_for_run):
    levels, filters, start = [], [], 0
    for size in LEVEL_SIZES:
        run_keys = keys[start:start + size]
        start += size
        levels.append({k: f"value-of-{i}" for i, k in enumerate(run_keys)})
        bloom = BlockedBloomFilter.for_items(
            hasher_for_run(len(run_keys)), len(run_keys), TARGET_FPR
        )
        bloom.add_batch(run_keys)
        filters.append(bloom)
    return LsmStore(levels, filters)


def main():
    total = sum(LEVEL_SIZES)
    keys = google_urls(total + 10_000, seed=7)
    stored, negatives = keys[:total], keys[total:]

    # LSM runs are immutable: the exact keys are known at build time, so
    # the entropy estimate is ground truth (fixed-dataset mode, Section 3).
    model = train_model(stored, base="xxh3", fixed_dataset=True)
    elh_positions = model.hasher_for_bloom_filter(
        max(LEVEL_SIZES), ALLOWED_INCREASE
    ).partial_key

    stores = {
        "full-key xxh3": build_store(
            stored, lambda n: EntropyLearnedHasher.full_key("xxh3")
        ),
        "entropy-learned": build_store(
            stored, lambda n: EntropyLearnedHasher(elh_positions, base="xxh3")
        ),
    }

    print(f"LSM store: {len(LEVEL_SIZES)} levels, {total} keys, "
          f"filters at {TARGET_FPR:.0%} FPR")
    print(f"ELH filter hash reads {elh_positions.bytes_read} bytes/key "
          f"(keys average {sum(map(len, stored)) / total:.0f} bytes)\n")

    for label, store in stores.items():
        start = time.perf_counter()
        found = sum(store.get(k) is not None for k in negatives)
        elapsed = time.perf_counter() - start
        false_run_reads = store.run_reads  # every run read here is a filter FP
        print(f"{label:>16}: {elapsed * 1e6 / len(negatives):7.1f} us/lookup, "
              f"{found} ghost hits, "
              f"{false_run_reads} unnecessary run reads "
              f"({false_run_reads / (len(negatives) * len(LEVEL_SIZES)):.4f} "
              "per filter probe)")

    # Positive lookups still work, of course.
    store = stores["entropy-learned"]
    assert all(store.get(k) is not None for k in stored[:500])
    print("\nPositive lookups verified on the entropy-learned store.")


if __name__ == "__main__":
    main()
