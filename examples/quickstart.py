"""Quickstart — the full Entropy-Learned Hashing pipeline in ~60 lines.

1. Learn where a data source keeps its randomness (greedy byte selection
   with a held-out entropy estimate).
2. Ask the model for a hasher with just enough entropy for each task.
3. Build hash structures that read a couple of words per key instead of
   the whole key, at unchanged correctness.

Run:  python examples/quickstart.py
"""

import time

from repro import BlockedBloomFilter, EntropyLearnedHasher, LinearProbingTable, train_model
from repro.core.trainer import describe_frontier
from repro.datasets import hn_urls


def main():
    # A sample of past data: Hacker-News-style URLs (~75 bytes each).
    keys = hn_urls(20_000, seed=1)
    sample, live = keys[:5_000], keys[5_000:]

    print("Training the entropy model on a 5K-key sample...")
    model = train_model(sample, base="wyhash")
    print("Learned Pareto frontier (bytes read vs entropy):")
    for line in describe_frontier(model):
        print("  " + line)

    # --- Hash table ------------------------------------------------------
    stored, probes = live[:7_000], live[7_000:]
    hasher = model.hasher_for_probing_table(capacity=len(stored))
    print(f"\nTable hasher reads {hasher.partial_key.bytes_read} bytes/key "
          f"(full keys average {sum(map(len, stored)) / len(stored):.0f}).")

    table = LinearProbingTable(hasher, capacity=len(stored) * 2)
    for key in stored:
        table.insert(key, True)
    hits = sum(table.get(k) is True for k in stored)
    misses = sum(table.get(k) is None for k in probes)
    print(f"Correctness: {hits}/{len(stored)} hits, "
          f"{misses}/{len(probes)} clean misses.")

    # --- Throughput: the reason to bother --------------------------------
    full = EntropyLearnedHasher.full_key("wyhash")
    for label, h in (("full-key wyhash", full), ("entropy-learned", hasher)):
        start = time.perf_counter()
        h.hash_batch(probes)
        elapsed = time.perf_counter() - start
        print(f"  {label:>18}: {elapsed * 1e9 / len(probes):7.0f} ns/key")

    # --- Bloom filter -----------------------------------------------------
    bloom_hasher = model.hasher_for_bloom_filter(len(stored), added_fpr=0.01)
    bloom = BlockedBloomFilter.for_items(bloom_hasher, len(stored), 0.03)
    bloom.add_batch(stored)
    fpr = bloom.measured_fpr(probes)
    print(f"\nBloom filter: no false negatives = "
          f"{bool(bloom.contains_batch(stored).all())}, measured FPR = {fpr:.3f} "
          f"(target 0.03 + 0.01 allowed increase)")


if __name__ == "__main__":
    main()
