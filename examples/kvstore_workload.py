"""A key-value store session — the library's pieces assembled.

Runs a mixed read/write workload (inserts, overwrites, deletes, point
lookups with a miss-heavy distribution — the pattern LSM filters exist
for) against :class:`repro.kvstore.LSMStore`, then dumps the store's
internal accounting: how many lookups the entropy-learned filters
answered without touching a run.

Run:  python examples/kvstore_workload.py
"""

import random
import time

from repro.datasets import google_urls
from repro.kvstore.store import LSMStore

NUM_KEYS = 10_000
NUM_OPERATIONS = 30_000


def main():
    keys = google_urls(NUM_KEYS * 2, seed=77)
    live_keys, miss_keys = keys[:NUM_KEYS], keys[NUM_KEYS:]
    store = LSMStore(memtable_bytes=96 << 10, compaction_fanout=5)
    reference = {}
    rng = random.Random(1)

    print(f"Running {NUM_OPERATIONS} mixed operations over {NUM_KEYS} keys...")
    start = time.perf_counter()
    for op_index in range(NUM_OPERATIONS):
        roll = rng.random()
        if roll < 0.30:  # write
            key = rng.choice(live_keys)
            value = f"v{op_index}".encode()
            store.put(key, value)
            reference[key] = value
        elif roll < 0.35:  # delete
            key = rng.choice(live_keys)
            store.delete(key)
            reference.pop(key, None)
        elif roll < 0.75:  # negative lookup (the filter-bound path)
            assert store.get(rng.choice(miss_keys)) is None
        else:  # positive/maybe lookup
            key = rng.choice(live_keys)
            assert store.get(key) == reference.get(key)
    elapsed = time.perf_counter() - start

    stats = store.stats
    print(f"\nDone in {elapsed:.1f}s "
          f"({elapsed * 1e6 / NUM_OPERATIONS:.1f} us/op)")
    print(f"  runs on disk:            {store.num_runs} "
          f"(after {stats.flushes} flushes, {stats.compactions} compactions)")
    print(f"  lookups:                 {stats.gets}")
    print(f"  answered by memtable:    {stats.memtable_hits}")
    print(f"  runs pruned by range:    {stats.runs_pruned_by_range}")
    print(f"  runs pruned by filter:   {stats.runs_pruned_by_filter}")
    print(f"  binary searches:         {stats.run_searches} "
          f"({stats.searches_per_get:.3f} per lookup)")

    fell_back = sum(bool(r.filter_fell_back) for r in store.runs)
    words = [len(r.filter.hasher.partial_key.positions)
             for r in store.runs if r.filter is not None]
    print(f"  filter hash words/key:   {words} (fell back: {fell_back})")

    # Final consistency sweep.
    mismatches = sum(
        store.get(k) != reference.get(k) for k in live_keys
    )
    print(f"\nConsistency check vs in-memory reference: "
          f"{NUM_KEYS - mismatches}/{NUM_KEYS} keys agree")
    assert mismatches == 0


if __name__ == "__main__":
    main()
