"""Streaming sketches — the paper's network-monitoring direction.

Sketches are a key computational bottleneck in software switches [46]:
every packet's flow key is hashed ``depth`` times by a Count-Min sketch
and once more by a cardinality estimator.  Entropy-Learned Hashing cuts
all of that per-packet hash work.

This example streams URL "flow keys" with a heavy-hitter (Zipf-ish)
frequency profile through a Count-Min sketch + HyperLogLog pair, once
with full-key xxh3 and once with an Entropy-Learned variant, comparing
wall-clock cost, heavy-hitter recovery, and cardinality estimates.

Run:  python examples/streaming_sketches.py
"""

import random
import time

from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import train_model
from repro.datasets import hn_urls
from repro.sketches.countmin import CountMinSketch
from repro.sketches.hyperloglog import HyperLogLog

NUM_FLOWS = 8_000
STREAM_LEN = 60_000
SKETCH_WIDTH = 2_048
SKETCH_DEPTH = 4


def make_stream():
    flows = hn_urls(NUM_FLOWS, seed=17)
    rng = random.Random(3)
    weights = [1.0 / (rank + 1) for rank in range(NUM_FLOWS)]  # Zipf s=1
    stream = rng.choices(flows, weights=weights, k=STREAM_LEN)
    truth = {}
    for key in stream:
        truth[key] = truth.get(key, 0) + 1
    return flows, stream, truth


def run(stream, hasher, chunk=2_000):
    sketch = CountMinSketch(hasher, width=SKETCH_WIDTH, depth=SKETCH_DEPTH)
    hll = HyperLogLog(hasher, precision=12)
    start = time.perf_counter()
    for i in range(0, len(stream), chunk):
        batch = stream[i:i + chunk]
        sketch.add_batch(batch)
        hll.add_batch(batch)
    return sketch, hll, time.perf_counter() - start


def main():
    flows, stream, truth = make_stream()
    model = train_model(flows[:3_000], base="xxh3")
    elh = model.hasher_for_entropy(  # sketch width governs the requirement
        required=11 + 3, seed=0  # log2(2048) + slack, Section 4.3 analogue
    )
    print(f"Stream: {STREAM_LEN} packets over {NUM_FLOWS} flows; "
          f"sketch {SKETCH_DEPTH}x{SKETCH_WIDTH}")
    print(f"ELH reads {elh.partial_key.bytes_read} bytes/key\n")

    top_true = sorted(truth, key=truth.get, reverse=True)[:20]
    for label, hasher in (
        ("full-key xxh3", EntropyLearnedHasher.full_key("xxh3")),
        ("entropy-learned", elh),
    ):
        sketch, hll, seconds = run(stream, hasher)
        # Heavy hitters: how many of the true top-20 are in the sketch's
        # top-20 estimates over all flows?
        estimates = {flow: sketch.estimate(flow) for flow in flows}
        top_est = sorted(estimates, key=estimates.get, reverse=True)[:20]
        recovered = len(set(top_true) & set(top_est))
        cardinality_err = abs(hll.estimate() - len(truth)) / len(truth)
        print(f"{label:>16}: {seconds * 1e9 / STREAM_LEN:7.0f} ns/packet, "
              f"top-20 recovered {recovered}/20, "
              f"cardinality error {cardinality_err:.1%}")


if __name__ == "__main__":
    main()
