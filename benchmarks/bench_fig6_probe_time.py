"""Figure 6 — hash-table probe time across datasets, sizes, hit rates.

Four panels: {small (1K keys), large (half-dataset)} × {hit rate 0, 1},
three configurations each: the table's stock hash (GST stand-in: xxh3),
full-key wyhash, and Entropy-Learned wyhash.  Reports ns/probe
(vectorized hash + table walk with precomputed hashes) plus the
machine-independent words-hashed-per-key cost.
"""

try:
    from benchmarks.common import (
        DATASETS, DISPLAY, NUM_PROBES, build_table, hasher_configs,
        measure_probe_ns, workload,
    )
except ImportError:
    from common import (
        DATASETS, DISPLAY, NUM_PROBES, build_table, hasher_configs,
        measure_probe_ns, workload,
    )

from repro.bench.reporting import format_speedup_table, print_header
from repro.tables.probing import LinearProbingTable

CONFIGS = ("GST", "wyhash", "ELH")


def run_panel(size: str, hit_rate: float, datasets=DATASETS):
    rows = {}
    for name in datasets:
        work = workload(name)
        stored = work.stored_small if size == "small" else work.stored_large
        probes = work.probes(hit_rate, stored)
        row = {}
        for config, hasher in hasher_configs(work, len(stored)).items():
            table = build_table(LinearProbingTable, hasher, stored)
            hash_ns, access_ns = measure_probe_ns(table, probes)
            row[config] = hash_ns + access_ns
        row["speedup"] = min(row["GST"], row["wyhash"]) / row["ELH"]
        rows[DISPLAY[name]] = row
    return rows


def main():
    for size in ("small", "large"):
        for hit_rate in (0.0, 1.0):
            title = (
                f"Figure 6 ({'in-cache' if size == 'small' else 'in-memory'}, "
                f"hit rate = {int(hit_rate)}): probe time ns/key"
            )
            print_header(title)
            rows = run_panel(size, hit_rate)
            print(format_speedup_table(rows, list(CONFIGS) + ["speedup"], digits=1))


def _probe_once(work, stored, hit_rate, config):
    hasher = hasher_configs(work, len(stored))[config]
    table = build_table(LinearProbingTable, hasher, stored)
    probes = work.probes(hit_rate, stored, num=2000)
    hashes = hasher.hash_batch(probes)

    def run():
        table.probe_batch_hashed(probes, hasher.hash_batch(probes))

    return run


def test_probe_google_full_key(benchmark):
    work = workload("google")
    benchmark(_probe_once(work, work.stored_small, 0.0, "wyhash"))


def test_probe_google_elh(benchmark):
    work = workload("google")
    benchmark(_probe_once(work, work.stored_small, 0.0, "ELH"))


def test_elh_beats_full_key_on_long_keys():
    """The Figure 6 headline: ELH wins on every hit-rate panel for the
    long-key datasets (probe totals include the shared table walk)."""
    rows = run_panel("small", 0.0, datasets=("wikipedia", "google"))
    for name, row in rows.items():
        assert row["ELH"] < row["wyhash"], (name, row)


if __name__ == "__main__":
    main()
