"""Ablation — the filter zoo: blocked Bloom vs standard Bloom vs
counting Bloom vs cuckoo filter, all on Entropy-Learned xxh3.

The paper evaluates blocked and standard Bloom filters; key-value
stores also deploy counting and cuckoo variants (deletable membership;
Chucky [25]).  This bench puts all four behind the same ELH hasher and
reports lookup cost, measured FPR, and bits per stored key — the space/
speed/accuracy triangle an adopter picks within.
"""

import random
import sys

from repro.bench.harness import time_callable
from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import train_model
from repro.datasets import google_urls
from repro.filters.blocked import BlockedBloomFilter
from repro.filters.bloom import BloomFilter
from repro.filters.counting import CountingBloomFilter
from repro.filters.cuckoo import CuckooFilter

NUM_KEYS = 4_000
TARGET_FPR = 0.01


def _filters(hasher):
    blocked = BlockedBloomFilter.for_items(hasher, NUM_KEYS, TARGET_FPR)
    standard = BloomFilter.for_items(hasher, NUM_KEYS, TARGET_FPR)
    counting = CountingBloomFilter.for_items(hasher, NUM_KEYS, TARGET_FPR)
    cuckoo = CuckooFilter(hasher, capacity=int(NUM_KEYS / 0.85))
    return {
        "blocked bloom": (blocked, blocked.num_bits),
        "standard bloom": (standard, standard.num_bits),
        "counting bloom": (counting, counting.num_counters * 8),
        "cuckoo": (cuckoo, cuckoo.num_buckets * 4 * cuckoo.fingerprint_bits),
    }


def run_comparison():
    keys = google_urls(NUM_KEYS + 4_000, seed=71)
    stored, negatives = keys[:NUM_KEYS], keys[NUM_KEYS:]
    model = train_model(stored, base="xxh3", fixed_dataset=True)
    hasher = model.hasher_for_bloom_filter(NUM_KEYS, added_fpr=0.005)

    rows = {}
    probes = stored[:1000] + negatives[:1000]
    for label, (f, bits) in _filters(hasher).items():
        if hasattr(f, "add_batch"):
            f.add_batch(stored)
        else:
            for key in stored:
                f.add(key)
        seconds = time_callable(
            lambda f=f: [f.contains(k) for k in probes], repeats=2
        )
        rows[label] = {
            "lookup_ns": seconds * 1e9 / len(probes),
            "fpr": f.measured_fpr(negatives),
            "bits_per_key": bits / NUM_KEYS,
            "deletable": 1.0 if hasattr(f, "remove") else 0.0,
        }
    return rows


def main():
    print_header(f"Ablation: filter zoo on Entropy-Learned xxh3 "
                 f"({NUM_KEYS} Google-URL keys, {TARGET_FPR:.0%} target FPR)")
    rows = run_comparison()
    print(format_speedup_table(
        rows, ["lookup_ns", "fpr", "bits_per_key", "deletable"],
        row_title="filter", digits=3,
    ))
    print()
    print("All four share one ELH hasher (scalar lookups for parity); "
          "counting costs 8x bits for deletability, cuckoo trades "
          "insertion-time evictions for deletability at Bloom-like FPR.")


def test_no_false_negatives_across_zoo():
    keys = google_urls(NUM_KEYS, seed=71)
    model = train_model(keys, base="xxh3", fixed_dataset=True)
    hasher = model.hasher_for_bloom_filter(NUM_KEYS, added_fpr=0.005)
    for label, (f, _) in _filters(hasher).items():
        if hasattr(f, "add_batch"):
            f.add_batch(keys)
        else:
            for key in keys:
                f.add(key)
        assert all(f.contains(k) for k in keys[:500]), label


def test_fprs_near_target():
    rows = run_comparison()
    for label, row in rows.items():
        assert row["fpr"] < 0.05, (label, row)


def test_filter_zoo_benchmark(benchmark):
    keys = google_urls(1_000, seed=71)
    hasher = EntropyLearnedHasher.full_key("xxh3")
    f = CuckooFilter(hasher, capacity=2_000)
    for key in keys:
        f.add(key)
    benchmark(lambda: [f.contains(k) for k in keys[:300]])


if __name__ == "__main__":
    main()
