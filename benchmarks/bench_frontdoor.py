"""Front-door benchmark — socket admission vs in-process submission.

Measures what the serving boundary costs: the same YCSB stream served
(a) by an in-process :class:`ServiceClient` calling ``submit_batch``
directly, and (b) through the asyncio front door over real TCP
connections — at more than one connection count, on both execution
backends.  Each record carries ops/s plus p50/p99 request latency
(scalar round trips on a settled service, so the numbers are what a
caller sees), and the ack ledger: a benchmark run that loses an
acknowledged write is a bug, not a slow run.  ``main()`` (and
``run_all.py``) writes ``BENCH_frontdoor.json`` at the repo root.
"""

import json
import os
import subprocess
import threading
import time

from repro.bench.harness import latency_summary_ns
from repro.bench.reporting import print_header
from repro.core.trainer import train_model
from repro.datasets import google_urls
from repro.service import (
    FrontDoorThread,
    NetworkClient,
    Service,
    ServiceClient,
    fork_available,
    run_service_workload,
)
from repro.workloads.ycsb import WorkloadGenerator

NUM_KEYS = 1_500
NUM_OPS = 3_000
SHARDS = 3
BACKEND = "chaining"
MAX_QUEUE = 256
BATCH_SIZE = 64
MIX = "B"
THETA = 0.99
LATENCY_SAMPLE = 150       # scalar round trips behind each p50/p99 field
CONNECTIONS = (1, 4)       # >= 2 connection counts per acceptance criteria


def _executions():
    return ("inline", "process") if fork_available() else ("inline",)


def _build(model, keys, execution):
    service = Service(
        num_shards=SHARDS, backend=BACKEND, model=model,
        capacity=len(keys), max_queue=MAX_QUEUE, batch_size=BATCH_SIZE,
        execution=execution,
    )
    client = ServiceClient(service)
    client.put_many((key, b"v0") for key in keys)
    return service, client


def _operations(keys):
    generator = WorkloadGenerator(keys, mix=MIX, seed=3, zipf_theta=THETA)
    return list(generator.operations(NUM_OPS))


def _inproc_record(model, keys, execution):
    service, client = _build(model, keys, execution)
    try:
        operations = _operations(keys)
        start = time.perf_counter()
        run_service_workload(client, operations)
        service.drain()
        elapsed = time.perf_counter() - start
        samples = []
        for key in keys[:LATENCY_SAMPLE]:
            t0 = time.perf_counter()
            client.get(key)
            samples.append(time.perf_counter() - t0)
        record = {
            "benchmark": f"frontdoor_inproc_{execution}",
            "path": "inproc",
            "execution": execution,
            "connections": 0,
            "mix": MIX,
            "zipf_theta": THETA,
            "shards": SHARDS,
            "backend": BACKEND,
            "ops": NUM_OPS,
            "elapsed_s": elapsed,
            "ops_per_second": NUM_OPS / elapsed if elapsed else 0.0,
            "rejections": service.stats()["rejected"],
            "client_retries": client.retries,
            "lost_acks": client.lost_acks,
        }
        record.update(latency_summary_ns(samples))
        return record
    finally:
        service.close()


def _socket_record(model, keys, execution, connections, inproc_ops_s):
    service, preload = _build(model, keys, execution)
    try:
        operations = _operations(keys)
        with FrontDoorThread(service) as door:
            clients = [
                NetworkClient("127.0.0.1", door.port, jitter_seed=0xF00 + i)
                for i in range(connections)
            ]
            try:
                step = -(-len(operations) // connections)
                errors = []

                def drive(client, ops_slice):
                    try:
                        run_service_workload(client, ops_slice)
                    except Exception as exc:
                        errors.append(exc)

                threads = [
                    threading.Thread(
                        target=drive,
                        args=(c, operations[i * step:(i + 1) * step]),
                    )
                    for i, c in enumerate(clients)
                ]
                start = time.perf_counter()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                elapsed = time.perf_counter() - start
                if errors:
                    raise errors[0]
                samples = []
                for key in keys[:LATENCY_SAMPLE]:
                    t0 = time.perf_counter()
                    clients[0].get(key)
                    samples.append(time.perf_counter() - t0)
                frontdoor = door.run_in_loop(door.door.stats)
                record = {
                    "benchmark": f"frontdoor_socket_{execution}"
                                 f"_c{connections}",
                    "path": "socket",
                    "execution": execution,
                    "connections": connections,
                    "mix": MIX,
                    "zipf_theta": THETA,
                    "shards": SHARDS,
                    "backend": BACKEND,
                    "ops": NUM_OPS,
                    "elapsed_s": elapsed,
                    "ops_per_second": NUM_OPS / elapsed if elapsed else 0.0,
                    "ops_ratio_vs_inproc": (
                        (NUM_OPS / elapsed) / inproc_ops_s
                        if elapsed and inproc_ops_s else 0.0
                    ),
                    "rejections": service.stats()["rejected"],
                    "client_retries": sum(c.retries for c in clients),
                    "generation_retries": sum(
                        c.generation_retries for c in clients
                    ),
                    "lost_acks": sum(c.lost_acks for c in clients),
                    "frames_in": frontdoor["frames_in"],
                    "admission_batches": frontdoor["admission_batches"],
                    "mean_coalesced": frontdoor["mean_coalesced"],
                    "max_coalesced": frontdoor["max_coalesced"],
                    "server_resubmits": frontdoor["resubmits"],
                }
                record.update(latency_summary_ns(samples))
                return record
            finally:
                for client in clients:
                    client.close()
    finally:
        service.close()


def frontdoor_records():
    keys = google_urls(NUM_KEYS, seed=17)
    model = train_model(keys, fixed_dataset=True)
    records = []
    for execution in _executions():
        inproc = _inproc_record(model, keys, execution)
        records.append(inproc)
        for connections in CONNECTIONS:
            records.append(
                _socket_record(model, keys, execution, connections,
                               inproc["ops_per_second"])
            )
    return records


def write_report(records, path=None):
    if path is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        path = os.path.join(repo_root, "BENCH_frontdoor.json")
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except OSError:
        rev = "unknown"
    with open(path, "w") as f:
        json.dump({
            "git_rev": rev,
            "generated_at_unix": time.time(),
            "records": records,
        }, f, indent=2)
    print(f"\n[wrote {len(records)} frontdoor record(s) to {path}]")
    return path


def main():
    print_header(f"Front door: socket vs in-process admission "
                 f"({SHARDS} {BACKEND} shards, {NUM_OPS} ops, mix {MIX})")
    records = frontdoor_records()
    for r in records:
        tag = (f"{r['connections']} conn" if r["path"] == "socket"
               else "in-proc")
        ratio = (f"  {r['ops_ratio_vs_inproc']:.2f}x of in-proc"
                 if r["path"] == "socket" else "")
        print(f"{r['benchmark']:28s} [{tag:>7s}] "
              f"{r['ops_per_second']:8.0f} ops/s  "
              f"p50 {r['latency_p50_ns'] / 1e3:7.0f}us "
              f"p99 {r['latency_p99_ns'] / 1e3:7.0f}us  "
              f"lost {r['lost_acks']}{ratio}")
    write_report(records)


# ------------------------------------------------------------------ tests


def _tiny_setup():
    keys = google_urls(300, seed=17)
    model = train_model(keys, fixed_dataset=True)
    return keys, model


def test_socket_record_loses_no_acks():
    keys, model = _tiny_setup()
    record = _socket_record(model, keys, "inline", 2, 1.0)
    assert record["lost_acks"] == 0
    assert record["generation_retries"] == 0
    assert record["latency_p50_ns"] > 0
    assert record["admission_batches"] >= 1


def test_inproc_record_shape_matches_schema():
    keys, model = _tiny_setup()
    record = _inproc_record(model, keys, "inline")
    for field in ("benchmark", "ops_per_second", "lost_acks",
                  "latency_p50_ns", "latency_p99_ns", "latency_samples"):
        assert field in record
    assert record["lost_acks"] == 0


if __name__ == "__main__":
    main()
