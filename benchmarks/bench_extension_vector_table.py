"""Extension — vectorized probe engine vs the scalar table walk.

Measured at hit rate 0 (the filter-style workload): misses resolve on
tag mismatches alone, so the engine's per-round vectorized compare does
nearly all the work.  For hit-heavy workloads the mandatory full-key
comparison is scalar either way and the engines tie.

Not a paper figure: quantifies how much of the scalar-Python table-walk
overhead the numpy round-synchronous probe engine removes, and verifies
that ELH's relative advantage persists on the faster engine (the paper's
observation that *more optimized tables benefit more* from cheap
hashing, Section 6.8 / appendix experiment 2).
"""

try:
    from benchmarks.common import DISPLAY, workload
except ImportError:
    from common import DISPLAY, workload

from repro.bench.harness import build_probe_mix, time_callable
from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.tables.probing import LinearProbingTable
from repro.tables.vectorized import VectorProbingTable

DATASETS = ("hn", "google")
NUM_PROBES = 4_000


def run_comparison():
    rows = {}
    for name in DATASETS:
        work = workload(name)
        stored = work.stored_large[:8_000]
        probes = build_probe_mix(stored, work.missing, 0.0, NUM_PROBES, seed=3)
        for hasher_label, hasher in (
            ("wyhash", EntropyLearnedHasher.full_key("wyhash")),
            ("ELH", work.model.hasher_for_probing_table(len(stored))),
        ):
            scalar = LinearProbingTable(hasher, capacity=int(len(stored) / 0.7))
            scalar.insert_batch(stored)
            vector = VectorProbingTable(hasher, capacity=int(len(stored) / 0.7))
            vector.insert_batch(stored)

            hashes = hasher.hash_batch(probes)
            scalar_ns = time_callable(
                lambda: scalar.probe_batch_hashed(probes, hasher.hash_batch(probes))
            ) * 1e9 / NUM_PROBES
            vector_ns = time_callable(
                lambda: vector.probe_batch(probes)
            ) * 1e9 / NUM_PROBES
            rows[f"{DISPLAY[name]}/{hasher_label}"] = {
                "scalar_ns": scalar_ns,
                "vector_ns": vector_ns,
                "engine_speedup": scalar_ns / vector_ns,
            }
    for name in DATASETS:
        full = rows[f"{DISPLAY[name]}/wyhash"]
        elh = rows[f"{DISPLAY[name]}/ELH"]
        elh["elh_speedup"] = full["vector_ns"] / elh["vector_ns"]
    return rows


def main():
    print_header("Extension: vectorized probe engine (hit rate 0, 8K keys)")
    rows = run_comparison()
    print(format_speedup_table(
        rows, ["scalar_ns", "vector_ns", "engine_speedup", "elh_speedup"],
        row_title="dataset/hash", digits=2,
    ))
    print()
    print("engine_speedup: vector engine vs scalar walk at equal hashing;"
          "\nelh_speedup: ELH vs full-key, both on the vector engine.")


def test_vector_engine_faster_on_misses():
    """Misses are the engine's target: tags filter nearly every probe,
    so the whole batch resolves in a few vectorized rounds."""
    rows = run_comparison()
    for label, row in rows.items():
        if label.endswith("/ELH"):
            assert row["engine_speedup"] > 1.0, (label, row)


def test_elh_still_wins_on_fast_engine():
    rows = run_comparison()
    assert rows["Hn/ELH"]["elh_speedup"] > 1.2


def test_vector_probe_benchmark(benchmark):
    work = workload("hn")
    hasher = work.model.hasher_for_probing_table(2_000)
    table = VectorProbingTable(hasher, capacity=4096)
    table.insert_batch(work.stored_small)
    probes = build_probe_mix(work.stored_small, work.missing, 0.5, 2000, seed=3)
    benchmark(lambda: table.probe_batch(probes))


if __name__ == "__main__":
    main()
