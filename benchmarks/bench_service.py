"""Service benchmark — YCSB load through the sharded serving layer.

Drives :class:`repro.service.Service` with the YCSB mixes (reusing
``workloads/ycsb.py``), including the skewed-read variant (Zipfian
theta past 1) that concentrates traffic on a hot shard, and a
degraded-mode drill that trips one shard's monitor mid-run and checks
that no acknowledged write is lost.  ``service_records()`` returns the
numbers as JSON-able records; ``main()`` (and ``run_all.py``) writes
them to ``BENCH_service.json`` at the repo root with per-shard
throughput, queue depth, rejection count, and the relative-balance
metric.
"""

import json
import os
import subprocess
import time

from repro.bench.harness import latency_summary_ns
from repro.bench.reporting import print_header
from repro.core.trainer import train_model
from repro.datasets import google_urls
from repro.service import Request, Service, ServiceClient, run_service_workload
from repro.workloads.ycsb import WorkloadGenerator

NUM_KEYS = 3_000
NUM_OPS = 6_000
SHARDS = 4
BACKEND = "probing"
MAX_QUEUE = 256
BATCH_SIZE = 64
LATENCY_SAMPLE = 200       # scalar round trips behind each p50/p99 field

# Execution-backend scaling run: heavy per-op structure work (LSM over
# 64-byte keys) so shard-side compute, not parent-side admission, is
# the term the process backend can parallelize.
SCALING_SHARDS = 4
SCALING_BACKEND = "lsm"
SCALING_KEY_BYTES = 64
SCALING_KEYS = 3_000
SCALING_BATCH = 1_024      # large submit chunks amortize the per-batch IPC
SCALING_ROUNDS = 3

# (label, mix, zipf theta): the two canonical mixes, a uniform-read
# baseline, and the hot-key stress the skewed-read variant exists for.
RUNS = (
    ("A_zipf", "A", 0.99),
    ("B_zipf", "B", 0.99),
    ("C_uniform", "C", 0.0),
    ("C_hot", "C", 1.3),
)

# Hot-key routing runs (PR 7): same skewed mixes with the Count-Min
# tracker on, plus matching uniform baselines, so the summary record
# can show both claims at once — balance back within the paper bound
# at theta=0.99, and skewed throughput within ~15% of uniform.
HOT_K = 16
HOT_ADAPT_EVERY = 4
HOT_SAMPLE = 4             # tracker observes every 4th routed key
HOT_MIXES = ("A", "B")


def _build(model, keys, hot_k=0):
    service = Service(
        num_shards=SHARDS, backend=BACKEND, model=model,
        capacity=len(keys), max_queue=MAX_QUEUE, batch_size=BATCH_SIZE,
        hot_k=hot_k, hot_sample=HOT_SAMPLE,
        adapt_every=HOT_ADAPT_EVERY if hot_k else 8,
    )
    client = ServiceClient(service)
    client.put_many((key, b"v0") for key in keys)
    return service, client


def _get_latency(client, keys, n=LATENCY_SAMPLE):
    """p50/p99 of full client round trips (submit -> pump -> response).

    Measured per request on a settled service, so the numbers are
    request latency as a caller sees it, not amortized batch cost.
    """
    samples = []
    for key in keys[:n]:
        start = time.perf_counter()
        client.get(key)
        samples.append(time.perf_counter() - start)
    return latency_summary_ns(samples)


def _record(label, mix, theta, service, client, elapsed, ops, keys):
    stats = service.stats()
    per_shard = [
        {
            "shard": s["shard"],
            "processed": s["processed"],
            "ops_per_second": s["processed"] / elapsed if elapsed else 0.0,
            "mean_batch_size": s["mean_batch_size"],
            "queue_depth": s["queue_depth"],
            "peak_queue_depth": s["peak_queue_depth"],
            "rejected": s["rejected"],
        }
        for s in stats["shards"]
    ]
    record = {
        "benchmark": f"service_ycsb_{label}",
        "mix": mix,
        "zipf_theta": theta,
        "shards": SHARDS,
        "backend": BACKEND,
        "execution": service.execution,
        "ops": ops,
        "elapsed_s": elapsed,
        "ops_per_second": ops / elapsed if elapsed else 0.0,
        "per_shard": per_shard,
        "relative_balance": stats["router"]["relative_std"],
        "balance_bound": stats["router"]["bound"],
        "within_bound": stats["router"]["within_bound"],
        "rejections": stats["rejected"],
        "client_retries": client.retries,
        "lost_acks": client.lost_acks,
        "degraded": stats["degraded"],
        "degrade_events": stats["degrade_events"],
    }
    record.update(_get_latency(client, keys))
    return record


def service_records():
    keys = google_urls(NUM_KEYS, seed=17)
    model = train_model(keys, fixed_dataset=True)
    records = []

    for label, mix, theta in RUNS:
        service, client = _build(model, keys)
        generator = WorkloadGenerator(keys, mix=mix, seed=3, zipf_theta=theta)
        operations = list(generator.operations(NUM_OPS))
        start = time.perf_counter()
        run_service_workload(client, operations)
        service.drain()
        elapsed = time.perf_counter() - start
        records.append(
            _record(label, mix, theta, service, client, elapsed, NUM_OPS,
                    keys)
        )

    records.extend(skew_hot_records(model, keys))

    # Degraded-mode drill: trip shard 0 halfway through a write-heavy
    # mix, finish the load full-key, then read back every key.
    service, client = _build(model, keys)
    generator = WorkloadGenerator(keys, mix="A", seed=3)
    operations = list(generator.operations(NUM_OPS))
    half = len(operations) // 2
    start = time.perf_counter()
    run_service_workload(client, operations[:half])
    service.force_trip(0)
    run_service_workload(client, operations[half:])
    service.drain()
    elapsed = time.perf_counter() - start
    missing = sum(1 for v in client.multi_get(keys) if v is None)
    record = _record("A_degraded", "A", 0.99, service, client, elapsed,
                     NUM_OPS, keys)
    record["keys_lost_after_degrade"] = missing
    records.append(record)
    return records


# -------------------------------------------------- hot-key routing


HOT_REPEATS = 3  # best-of-N: the ops/s ratio must not ride scheduler noise


def _mix_run(model, keys, label, mix, theta, hot_k=0):
    # The routing outcome (promotions, balance) is deterministic per
    # seed; only wall clock varies, so keep the fastest of N runs.
    best = None
    for _ in range(HOT_REPEATS):
        service, client = _build(model, keys, hot_k=hot_k)
        generator = WorkloadGenerator(keys, mix=mix, seed=3,
                                      zipf_theta=theta)
        operations = list(generator.operations(NUM_OPS))
        start = time.perf_counter()
        run_service_workload(client, operations)
        service.drain()
        elapsed = time.perf_counter() - start
        record = _record(label, mix, theta, service, client, elapsed,
                         NUM_OPS, keys)
        routing = service.stats()["routing"]
        record["hot_k"] = hot_k
        record["promoted"] = routing["promoted"]
        record["overlay_keys"] = routing["overlay_keys"]
        record["routing_generation"] = routing["generation"]
        if best is None or record["ops_per_second"] > best["ops_per_second"]:
            best = record
    return best


def skew_hot_records(model, keys):
    """Skew-with-hot-routing records: the PR 7 acceptance numbers.

    For each skewed mix, run a uniform baseline and the theta=0.99
    stream with the hot-key tracker enabled, then emit one summary
    record per mix pairing the two: ``within_bound`` must come back
    true under hot routing and ``skew_vs_uniform_ops_ratio`` must stay
    near 1 (the ~15% criterion).
    """
    records = []
    for mix in HOT_MIXES:
        uniform = _mix_run(model, keys, f"{mix}_uniform", mix, 0.0)
        hot = _mix_run(model, keys, f"{mix}_zipf_hot", mix, 0.99,
                       hot_k=HOT_K)
        ratio = (
            hot["ops_per_second"] / uniform["ops_per_second"]
            if uniform["ops_per_second"] else 0.0
        )
        summary = {
            "benchmark": f"service_skew_hot_summary_{mix}",
            "mix": mix,
            "zipf_theta": 0.99,
            "hot_k": HOT_K,
            "adapt_every": HOT_ADAPT_EVERY,
            "promoted": hot["promoted"],
            "uniform_ops_per_second": uniform["ops_per_second"],
            "skew_hot_ops_per_second": hot["ops_per_second"],
            "skew_vs_uniform_ops_ratio": ratio,
            "relative_balance": hot["relative_balance"],
            "balance_bound": hot["balance_bound"],
            "within_bound": hot["within_bound"],
            "lost_acks": hot["lost_acks"],
            "latency_p50_ns": hot["latency_p50_ns"],
            "latency_p99_ns": hot["latency_p99_ns"],
            "latency_samples": hot["latency_samples"],
        }
        records.extend([uniform, hot, summary])
    return records


# --------------------------------------------------- execution scaling


def _scaling_keys():
    return [
        (b"scale-%06d" % i).ljust(SCALING_KEY_BYTES, b"x")
        for i in range(SCALING_KEYS)
    ]


def _scaling_record(execution, model, keys):
    service = Service(
        num_shards=SCALING_SHARDS, backend=SCALING_BACKEND, model=model,
        capacity=len(keys), max_queue=2 * SCALING_BATCH, batch_size=512,
        execution=execution,
    )
    try:
        client = ServiceClient(service)
        client.put_many((key, key) for key in keys)  # 64-byte values too
        ops = 0
        start = time.perf_counter()
        for _ in range(SCALING_ROUNDS):
            for lo in range(0, len(keys), SCALING_BATCH):
                chunk = keys[lo:lo + SCALING_BATCH]
                service.submit_batch([Request("get", key) for key in chunk])
                service.drain()
                ops += len(chunk)
        elapsed = time.perf_counter() - start
        record = {
            "benchmark": f"service_scaling_{execution}",
            "execution": execution,
            "shards": SCALING_SHARDS,
            "backend": SCALING_BACKEND,
            "key_bytes": SCALING_KEY_BYTES,
            "ops": ops,
            "elapsed_s": elapsed,
            "ops_per_second": ops / elapsed if elapsed else 0.0,
            "cpu_cores": os.cpu_count() or 1,
            "lost_acks": client.lost_acks,
        }
        record.update(_get_latency(client, keys))
        return record
    finally:
        service.close()


def scaling_records():
    """Aggregate throughput at 4 shards: inline vs one process per shard.

    The speedup record carries ``cpu_cores`` because the ratio is only
    meaningful relative to it — on a single-core host the process
    backend pays IPC overhead with no parallelism to buy back, and the
    honest number is below 1.
    """
    keys = _scaling_keys()
    model = train_model(keys, fixed_dataset=True)
    inline = _scaling_record("inline", model, keys)
    process = _scaling_record("process", model, keys)
    speedup = (
        process["ops_per_second"] / inline["ops_per_second"]
        if inline["ops_per_second"] else 0.0
    )
    summary = {
        "benchmark": "service_scaling_speedup",
        "shards": SCALING_SHARDS,
        "backend": SCALING_BACKEND,
        "cpu_cores": os.cpu_count() or 1,
        "inline_ops_per_second": inline["ops_per_second"],
        "process_ops_per_second": process["ops_per_second"],
        "speedup_process_vs_inline": speedup,
        "latency_p50_ns": process["latency_p50_ns"],
        "latency_p99_ns": process["latency_p99_ns"],
        "latency_samples": process["latency_samples"],
    }
    return [inline, process, summary]


def write_report(records, path=None):
    if path is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        path = os.path.join(repo_root, "BENCH_service.json")
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except OSError:
        rev = "unknown"
    with open(path, "w") as f:
        json.dump({
            "git_rev": rev,
            "generated_at_unix": time.time(),
            "records": records,
        }, f, indent=2)
    print(f"\n[wrote {len(records)} service record(s) to {path}]")
    return path


def main():
    print_header("Service: sharded YCSB serving "
                 f"({SHARDS} {BACKEND} shards, {NUM_KEYS} keys)")
    records = service_records()
    for r in records:
        if "per_shard" not in r:
            print(f"{r['benchmark']:24s} skew/uniform ops ratio "
                  f"{r['skew_vs_uniform_ops_ratio']:.2f}  "
                  f"balance {r['relative_balance']:.4f} "
                  f"({'ok' if r['within_bound'] else 'HOT'})  "
                  f"promoted {r['promoted']}")
            continue
        hot = max(s["processed"] for s in r["per_shard"])
        cold = min(s["processed"] for s in r["per_shard"])
        print(f"{r['benchmark']:24s} {r['ops_per_second']:8.0f} ops/s  "
              f"p50 {r['latency_p50_ns'] / 1e3:7.0f}us "
              f"p99 {r['latency_p99_ns'] / 1e3:7.0f}us  "
              f"balance {r['relative_balance']:.4f} "
              f"({'ok' if r['within_bound'] else 'HOT'})  "
              f"rejected {r['rejections']}  "
              f"degraded {r['degraded']}  "
              f"shard ops {cold}-{hot}")
    drill = records[-1]
    print(f"degraded drill: {drill['keys_lost_after_degrade']} key(s) lost, "
          f"{drill['lost_acks']} ack(s) lost")
    scaling = scaling_records()
    records.extend(scaling)
    for r in scaling[:2]:
        print(f"{r['benchmark']:28s} {r['ops_per_second']:8.0f} ops/s  "
              f"p50 {r['latency_p50_ns'] / 1e3:7.0f}us "
              f"p99 {r['latency_p99_ns'] / 1e3:7.0f}us")
    summary = scaling[-1]
    print(f"process vs inline at {summary['shards']} shards: "
          f"{summary['speedup_process_vs_inline']:.2f}x "
          f"on {summary['cpu_cores']} core(s)")
    write_report(records)


# ------------------------------------------------------------------ tests
# (exercised by `pytest benchmarks/bench_service.py`; the tier-1 suite
# collects only tests/, so these never slow it down)


def test_zero_lost_acks_per_mix():
    for record in service_records():
        assert record["lost_acks"] == 0, record["benchmark"]


def test_process_scaling_run_loses_nothing():
    # A shrunk version of the scaling run (fast enough for pytest):
    # the process backend must serve the same workload with zero lost
    # acks and answer every get.
    keys = _scaling_keys()[:400]
    from repro.core.trainer import train_model as _train

    model = _train(keys, fixed_dataset=True)
    record = _scaling_record("process", model, keys)
    assert record["execution"] == "process"
    assert record["lost_acks"] == 0
    assert record["ops"] == len(keys) * SCALING_ROUNDS
    assert record["latency_p50_ns"] > 0


def test_hot_routing_restores_balance():
    # The PR 7 acceptance pair: under zipf theta=0.99 with the tracker
    # on, promotions must bring the routed balance back inside the
    # paper's bound, without losing acks, at throughput comparable to
    # uniform traffic (loose 0.75 floor here; the committed JSON holds
    # the exact ratio).
    keys = google_urls(NUM_KEYS, seed=17)
    model = train_model(keys, fixed_dataset=True)
    for record in skew_hot_records(model, keys):
        if not record["benchmark"].startswith("service_skew_hot_summary"):
            continue
        assert record["promoted"] >= 1, record
        assert record["within_bound"], record
        assert record["lost_acks"] == 0, record
        assert record["skew_vs_uniform_ops_ratio"] >= 0.75, record


def test_degraded_drill_loses_nothing():
    records = service_records()
    drill = records[-1]
    # The breaker may already have healed the shard by the end of the
    # run (degraded is a live property now), but the trip must be on
    # record and no acknowledged write may have vanished across it.
    assert drill["degrade_events"] >= 1
    assert drill["keys_lost_after_degrade"] == 0


if __name__ == "__main__":
    main()
