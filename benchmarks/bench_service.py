"""Service benchmark — YCSB load through the sharded serving layer.

Drives :class:`repro.service.Service` with the YCSB mixes (reusing
``workloads/ycsb.py``), including the skewed-read variant (Zipfian
theta past 1) that concentrates traffic on a hot shard, and a
degraded-mode drill that trips one shard's monitor mid-run and checks
that no acknowledged write is lost.  ``service_records()`` returns the
numbers as JSON-able records; ``main()`` (and ``run_all.py``) writes
them to ``BENCH_service.json`` at the repo root with per-shard
throughput, queue depth, rejection count, and the relative-balance
metric.
"""

import json
import os
import subprocess
import time

from repro.bench.reporting import print_header
from repro.core.trainer import train_model
from repro.datasets import google_urls
from repro.service import Service, ServiceClient, run_service_workload
from repro.workloads.ycsb import WorkloadGenerator

NUM_KEYS = 3_000
NUM_OPS = 6_000
SHARDS = 4
BACKEND = "probing"
MAX_QUEUE = 256
BATCH_SIZE = 64

# (label, mix, zipf theta): the two canonical mixes, a uniform-read
# baseline, and the hot-key stress the skewed-read variant exists for.
RUNS = (
    ("A_zipf", "A", 0.99),
    ("B_zipf", "B", 0.99),
    ("C_uniform", "C", 0.0),
    ("C_hot", "C", 1.3),
)


def _build(model, keys):
    service = Service(
        num_shards=SHARDS, backend=BACKEND, model=model,
        capacity=len(keys), max_queue=MAX_QUEUE, batch_size=BATCH_SIZE,
    )
    client = ServiceClient(service)
    client.put_many((key, b"v0") for key in keys)
    return service, client


def _record(label, mix, theta, service, client, elapsed, ops):
    stats = service.stats()
    per_shard = [
        {
            "shard": s["shard"],
            "processed": s["processed"],
            "ops_per_second": s["processed"] / elapsed if elapsed else 0.0,
            "mean_batch_size": s["mean_batch_size"],
            "queue_depth": s["queue_depth"],
            "peak_queue_depth": s["peak_queue_depth"],
            "rejected": s["rejected"],
        }
        for s in stats["shards"]
    ]
    return {
        "benchmark": f"service_ycsb_{label}",
        "mix": mix,
        "zipf_theta": theta,
        "shards": SHARDS,
        "backend": BACKEND,
        "ops": ops,
        "elapsed_s": elapsed,
        "ops_per_second": ops / elapsed if elapsed else 0.0,
        "per_shard": per_shard,
        "relative_balance": stats["router"]["relative_std"],
        "balance_bound": stats["router"]["bound"],
        "within_bound": stats["router"]["within_bound"],
        "rejections": stats["rejected"],
        "client_retries": client.retries,
        "lost_acks": client.lost_acks,
        "degraded": stats["degraded"],
        "degrade_events": stats["degrade_events"],
    }


def service_records():
    keys = google_urls(NUM_KEYS, seed=17)
    model = train_model(keys, fixed_dataset=True)
    records = []

    for label, mix, theta in RUNS:
        service, client = _build(model, keys)
        generator = WorkloadGenerator(keys, mix=mix, seed=3, zipf_theta=theta)
        operations = list(generator.operations(NUM_OPS))
        start = time.perf_counter()
        run_service_workload(client, operations)
        service.drain()
        elapsed = time.perf_counter() - start
        records.append(
            _record(label, mix, theta, service, client, elapsed, NUM_OPS)
        )

    # Degraded-mode drill: trip shard 0 halfway through a write-heavy
    # mix, finish the load full-key, then read back every key.
    service, client = _build(model, keys)
    generator = WorkloadGenerator(keys, mix="A", seed=3)
    operations = list(generator.operations(NUM_OPS))
    half = len(operations) // 2
    start = time.perf_counter()
    run_service_workload(client, operations[:half])
    service.force_trip(0)
    run_service_workload(client, operations[half:])
    service.drain()
    elapsed = time.perf_counter() - start
    missing = sum(1 for v in client.multi_get(keys) if v is None)
    record = _record("A_degraded", "A", 0.99, service, client, elapsed, NUM_OPS)
    record["keys_lost_after_degrade"] = missing
    records.append(record)
    return records


def write_report(records, path=None):
    if path is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        path = os.path.join(repo_root, "BENCH_service.json")
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except OSError:
        rev = "unknown"
    with open(path, "w") as f:
        json.dump({
            "git_rev": rev,
            "generated_at_unix": time.time(),
            "records": records,
        }, f, indent=2)
    print(f"\n[wrote {len(records)} service record(s) to {path}]")
    return path


def main():
    print_header("Service: sharded YCSB serving "
                 f"({SHARDS} {BACKEND} shards, {NUM_KEYS} keys)")
    records = service_records()
    for r in records:
        hot = max(s["processed"] for s in r["per_shard"])
        cold = min(s["processed"] for s in r["per_shard"])
        print(f"{r['benchmark']:24s} {r['ops_per_second']:8.0f} ops/s  "
              f"balance {r['relative_balance']:.4f} "
              f"({'ok' if r['within_bound'] else 'HOT'})  "
              f"shard ops {cold}-{hot}  "
              f"rejected {r['rejections']}  "
              f"degraded {r['degraded']}")
    drill = records[-1]
    print(f"degraded drill: {drill['keys_lost_after_degrade']} key(s) lost, "
          f"{drill['lost_acks']} ack(s) lost")
    write_report(records)


# ------------------------------------------------------------------ tests
# (exercised by `pytest benchmarks/bench_service.py`; the tier-1 suite
# collects only tests/, so these never slow it down)


def test_zero_lost_acks_per_mix():
    for record in service_records():
        assert record["lost_acks"] == 0, record["benchmark"]


def test_degraded_drill_loses_nothing():
    records = service_records()
    drill = records[-1]
    # The breaker may already have healed the shard by the end of the
    # run (degraded is a live property now), but the trip must be on
    # record and no acknowledged write may have vanished across it.
    assert drill["degrade_events"] >= 1
    assert drill["keys_lost_after_degrade"] == 0


if __name__ == "__main__":
    main()
