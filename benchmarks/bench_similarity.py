"""Similarity serving benchmark — b-bit MinHash + LSH banding.

Three questions, one artifact (``BENCH_similarity.json``):

* **Full-key vs partial-key element hashing** — MinHash is the most
  hash-intensive consumer in the repo (k hashes per shingle), so the
  entropy-learned lever applies directly: a trained partial key over
  the shingle bytes must build signatures *faster* than full-key
  hashing at matching retrieval quality (recall@10 >= 0.9 on planted
  near-duplicates).
* **b-bit vs unpacked 64-bit signatures** — truncating rows to b bits
  shrinks storage 8-16x; the corrected estimator must keep recall
  while pairwise estimation stays cheap (Li & Koenig's claim).
* **Serving cost** — ``similar(key, k)`` through the sharded service,
  measured as client round trips.

Every record carries ``recall_at_10`` and ``ops_per_second`` next to
the standard latency fields, so the artifact schema can assert the
speed/quality pairing instead of either number alone.
"""

import json
import os
import random
import subprocess
import time

from repro.bench.harness import latency_summary_ns
from repro.bench.reporting import print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import train_model
from repro.service import Service, ServiceClient
from repro.similarity import BBitMinHash, LSHIndex, shingle_bytes
from repro.sketches.minhash import MinHashSignature

NUM_DOCS = 120
NUM_DUPS = 30
WORDS_PER_DOC = 40
VOCAB = 2000
SHINGLE_WIDTH = 32         # partial key reads 8 of these 32 bytes
ENTROPY_TARGET = 12.0      # trains down to one 8-byte word
K_ROWS = 64
BANDS, ROWS = 16, 4        # banding threshold ~0.5; planted pairs ~0.85
QUERY_K = 10
ESTIMATE_PAIRS = 4000      # pairwise-estimation throughput sample


def make_corpus(seed=0):
    """Word-salad docs plus planted one-word-edit near-duplicates."""
    rng = random.Random(seed)
    vocab = [f"word{i:04d}".encode() for i in range(VOCAB)]
    docs = {}
    for i in range(NUM_DOCS):
        docs[b"%08x-doc%d" % (rng.getrandbits(32), i)] = b" ".join(
            vocab[rng.randrange(VOCAB)] for _ in range(WORDS_PER_DOC)
        )
    pairs = []
    keys = list(docs)
    for j in range(NUM_DUPS):
        src = keys[rng.randrange(NUM_DOCS)]
        words = docs[src].split()
        words[rng.randrange(len(words))] = b"edited"
        dup = b"%08x-dup%d" % (rng.getrandbits(32), j)
        docs[dup] = b" ".join(words)
        pairs.append((src, dup))
    return docs, pairs


def train_partial_hasher(shingled):
    sample = [s for items in list(shingled.values())[:40] for s in items[:60]]
    model = train_model(sample, base="xxh3", seed=2, word_size=8)
    return model.hasher_for_entropy(ENTROPY_TARGET)


def _index_recall(index, sigs, pairs):
    hits = sum(
        1 for src, dup in pairs
        if dup in {key for key, _ in index.query(sigs[src], QUERY_K,
                                                 exclude=src)}
    )
    return hits / len(pairs)


def hasher_record(label, hasher, shingled, pairs):
    """Build + index + query under one element hasher, timed per doc."""
    build_samples = []
    sigs = {}
    start = time.perf_counter()
    for key, items in shingled.items():
        t0 = time.perf_counter()
        sigs[key] = BBitMinHash.from_items(
            hasher, items, k=K_ROWS, b=8, bands=BANDS
        )
        build_samples.append(time.perf_counter() - t0)
    index = LSHIndex(bands=BANDS, rows=ROWS, b=8)
    index.insert_batch(list(sigs), list(sigs.values()))
    build_s = time.perf_counter() - start

    query_start = time.perf_counter()
    recall = _index_recall(index, sigs, pairs)
    query_s = time.perf_counter() - query_start

    record = {
        "benchmark": f"similarity_{label}",
        "element_hasher": label,
        "bytes_hashed_per_shingle": hasher.partial_key.bytes_read
        or SHINGLE_WIDTH,
        "shingle_width": SHINGLE_WIDTH,
        "k": K_ROWS, "b": 8, "bands": BANDS, "rows": ROWS,
        "docs": len(shingled),
        "build_seconds": build_s,
        # The headline throughput: signature construction + indexing is
        # the hash-dominated term the entropy-learned lever targets.
        "ops_per_second": len(shingled) / build_s if build_s else 0.0,
        "query_ops_per_second": len(pairs) / query_s if query_s else 0.0,
        "recall_at_10": recall,
    }
    record.update(latency_summary_ns(build_samples))
    return record


def estimator_records(full_sigs, pairs, rng):
    """b in {4, 8} (packed, banded) vs the unpacked 64-bit signature."""
    keys = list(full_sigs)
    sampled = [
        (keys[rng.randrange(len(keys))], keys[rng.randrange(len(keys))])
        for _ in range(ESTIMATE_PAIRS)
    ]
    records = []
    for b in (4, 8):
        sigs = {
            key: BBitMinHash.from_signature(sig, b, bands=BANDS)
            for key, sig in full_sigs.items()
        }
        index = LSHIndex(bands=BANDS, rows=ROWS, b=b)
        index.insert_batch(list(sigs), list(sigs.values()))
        samples = []
        for a, c in sampled:
            t0 = time.perf_counter()
            sigs[a].jaccard(sigs[c])
            samples.append(time.perf_counter() - t0)
        elapsed = sum(samples)
        some = next(iter(sigs.values()))
        record = {
            "benchmark": f"similarity_bbit_b{b}",
            "b": b, "k": K_ROWS, "bands": BANDS, "rows": ROWS,
            "signature_bytes": some.bands * some.block_bytes,
            "ops_per_second": len(samples) / elapsed if elapsed else 0.0,
            "recall_at_10": _index_recall(index, sigs, pairs),
        }
        record.update(latency_summary_ns(samples))
        records.append(record)

    # Unpacked reference: full 64-bit minima, brute-force top-10.
    samples = []
    for a, c in sampled:
        t0 = time.perf_counter()
        full_sigs[a].jaccard(full_sigs[c])
        samples.append(time.perf_counter() - t0)
    elapsed = sum(samples)
    hits = 0
    for src, dup in pairs:
        scored = [
            (key, full_sigs[src].jaccard(sig))
            for key, sig in full_sigs.items() if key != src
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        if dup in {key for key, _ in scored[:QUERY_K]}:
            hits += 1
    record = {
        "benchmark": "similarity_unpacked64",
        "b": 64, "k": K_ROWS,
        "signature_bytes": K_ROWS * 8,
        "ops_per_second": len(samples) / elapsed if elapsed else 0.0,
        "recall_at_10": hits / len(pairs),
    }
    record.update(latency_summary_ns(samples))
    records.append(record)
    return records


def service_record(hasher, docs, pairs):
    """similar(key, k) through the service, one shard co-resident."""
    service = Service(
        num_shards=1, backend="similarity", hasher=hasher,
        capacity=len(docs),
        backend_options={"bands": BANDS, "rows": ROWS, "b": 8,
                         "shingle_width": SHINGLE_WIDTH},
    )
    try:
        client = ServiceClient(service)
        start = time.perf_counter()
        client.put_many(list(docs.items()))
        ingest_s = time.perf_counter() - start
        samples = []
        hits = 0
        for src, dup in pairs:
            t0 = time.perf_counter()
            neighbors = client.similar(src, k=QUERY_K)
            samples.append(time.perf_counter() - t0)
            if dup in {key for key, _ in neighbors}:
                hits += 1
        elapsed = sum(samples)
        record = {
            "benchmark": "similarity_service_query",
            "shards": 1,
            "execution": "inline",
            "docs": len(docs),
            "ingest_docs_per_second": len(docs) / ingest_s if ingest_s
            else 0.0,
            "ops_per_second": len(samples) / elapsed if elapsed else 0.0,
            "recall_at_10": hits / len(pairs),
            "lost_acks": client.lost_acks,
        }
        record.update(latency_summary_ns(samples))
        return record
    finally:
        service.close()


def similarity_records():
    docs, pairs = make_corpus()
    shingled = {key: shingle_bytes(doc, SHINGLE_WIDTH)
                for key, doc in docs.items()}
    full = EntropyLearnedHasher.full_key("xxh3")
    partial = train_partial_hasher(shingled)

    records = [
        hasher_record("full_key", full, shingled, pairs),
        hasher_record("partial_key", partial, shingled, pairs),
    ]
    full_sigs = {
        key: MinHashSignature.from_items(full, items, k=K_ROWS)
        for key, items in shingled.items()
    }
    records.extend(estimator_records(full_sigs, pairs, random.Random(1)))
    records.append(service_record(partial, docs, pairs))
    return records


def write_report(records, path=None):
    if path is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        path = os.path.join(repo_root, "BENCH_similarity.json")
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except OSError:
        rev = "unknown"
    with open(path, "w") as f:
        json.dump({
            "git_rev": rev,
            "generated_at_unix": time.time(),
            "records": records,
        }, f, indent=2)
    print(f"\n[wrote {len(records)} similarity record(s) to {path}]")
    return path


def main():
    print_header("Similarity serving: b-bit MinHash + LSH banding "
                 f"({NUM_DOCS}+{NUM_DUPS} docs, k={K_ROWS}, "
                 f"{BANDS}x{ROWS} bands)")
    records = similarity_records()
    for r in records:
        extra = ""
        if "bytes_hashed_per_shingle" in r:
            extra = (f"  {r['bytes_hashed_per_shingle']}/"
                     f"{r['shingle_width']} bytes/shingle")
        elif "signature_bytes" in r:
            extra = f"  {r['signature_bytes']} sig bytes"
        print(f"{r['benchmark']:26s} {r['ops_per_second']:10.0f} ops/s  "
              f"recall@10 {r['recall_at_10']:.2f}{extra}")
    full = next(r for r in records if r["benchmark"] == "similarity_full_key")
    partial = next(
        r for r in records if r["benchmark"] == "similarity_partial_key"
    )
    speedup = (
        partial["ops_per_second"] / full["ops_per_second"]
        if full["ops_per_second"] else 0.0
    )
    print(f"\npartial-key vs full-key signature build: {speedup:.2f}x "
          f"({partial['bytes_hashed_per_shingle']} of "
          f"{SHINGLE_WIDTH} bytes hashed) at recall@10 "
          f"{partial['recall_at_10']:.2f}")
    write_report(records)


if __name__ == "__main__":
    main()
