"""Figure 10 — Bloom filter lookup time and FPR.

Register-blocked Bloom filters (Lang et al.) at 3% target FPR with a 1%
allowed ELH increase, xxh3 as the base hash (the paper's filter setup),
small (1K) and large (half-dataset) sizes.  Reports vectorized lookup
ns/key and measured FPR for full-key xxh3 vs Entropy-Learned xxh3.

Claims to reproduce: consistent speedups on high-entropy datasets, small
speedup on Wiki (short low-entropy keys, reverts toward full-key), and
measured FPR within the 1% budget of the full-key filter.
"""

try:
    from benchmarks.common import DATASETS, DISPLAY, SMALL_N, workload
except ImportError:
    from common import DATASETS, DISPLAY, SMALL_N, workload

from repro.bench.harness import time_callable
from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.filters.blocked import BlockedBloomFilter

TARGET_FPR = 0.03
ADDED_FPR = 0.01


def _filters(work, stored):
    """(full-key filter, ELH filter) for a stored set."""
    full_hasher = EntropyLearnedHasher.full_key("xxh3")
    elh_hasher = work.model.hasher_for_bloom_filter(len(stored), ADDED_FPR)
    # Re-base onto xxh3 regardless of the workload's table hash.
    elh_hasher = EntropyLearnedHasher(elh_hasher.partial_key, base="xxh3")
    filters = {}
    for label, hasher in (("xxh3", full_hasher), ("ELH", elh_hasher)):
        f = BlockedBloomFilter.for_items(hasher, len(stored), TARGET_FPR)
        f.add_batch(stored)
        filters[label] = f
    return filters


def run_panel(size: str):
    rows = {}
    for name in DATASETS:
        work = workload(name)
        stored = work.stored_small if size == "small" else work.stored_large
        probes = work.probes(0.5, stored)
        negatives = work.missing[:4000]
        filters = _filters(work, stored)
        row = {}
        for label, f in filters.items():
            seconds = time_callable(lambda f=f: f.contains_batch(probes))
            row[f"{label}_ns"] = seconds * 1e9 / len(probes)
            row[f"{label}_fpr"] = f.measured_fpr(negatives)
        row["speedup"] = row["xxh3_ns"] / row["ELH_ns"]
        rows[DISPLAY[name]] = row
    return rows


def main():
    for size in ("small", "large"):
        print_header(f"Figure 10 ({size} data): blocked Bloom filter "
                     "lookup ns/key and FPR")
        rows = run_panel(size)
        print(format_speedup_table(
            rows,
            ["xxh3_ns", "ELH_ns", "speedup", "xxh3_fpr", "ELH_fpr"],
            digits=3,
        ))


def test_fpr_within_budget():
    rows = run_panel("small")
    for name, row in rows.items():
        assert row["ELH_fpr"] <= row["xxh3_fpr"] + ADDED_FPR + 0.02, (name, row)


def test_speedup_on_high_entropy_datasets():
    rows = run_panel("small")
    wins = [rows[d]["speedup"] for d in ("Wp.", "Hn", "Ggle")]
    assert max(wins) > 1.3


def test_bloom_lookup_benchmark_full(benchmark):
    work = workload("google")
    f = _filters(work, work.stored_small)["xxh3"]
    probes = work.probes(0.5, work.stored_small, num=2000)
    benchmark(lambda: f.contains_batch(probes))


def test_bloom_lookup_benchmark_elh(benchmark):
    work = workload("google")
    f = _filters(work, work.stored_small)["ELH"]
    probes = work.probes(0.5, work.stored_small, num=2000)
    benchmark(lambda: f.contains_batch(probes))


if __name__ == "__main__":
    main()
