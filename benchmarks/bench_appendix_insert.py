"""Appendix experiment 1 — hash-table insert time.

Entropy-Learned Hashing speeds up inserts like probes with hit rate 1:
the hash is cheaper, the collision handling unchanged.  Builds
linear-probing tables from scratch per configuration and reports
ns/insert for in-cache (1K) and in-memory (half-dataset) sizes.
"""

try:
    from benchmarks.common import (
        DATASETS, DISPLAY, hasher_configs, measure_insert_ns, workload,
    )
except ImportError:
    from common import (
        DATASETS, DISPLAY, hasher_configs, measure_insert_ns, workload,
    )

from repro.bench.reporting import format_speedup_table, print_header
from repro.tables.probing import LinearProbingTable

CONFIGS = ("GST", "wyhash", "ELH")


def run_panel(size: str):
    rows = {}
    for name in DATASETS:
        work = workload(name)
        stored = work.stored_small if size == "small" else work.stored_large
        row = {}
        for config, hasher in hasher_configs(work, len(stored)).items():
            row[config] = measure_insert_ns(
                LinearProbingTable, hasher, stored, repeats=2
            )
        row["speedup"] = min(row["GST"], row["wyhash"]) / row["ELH"]
        rows[DISPLAY[name]] = row
    return rows


def main():
    for size in ("small", "large"):
        print_header(
            f"Appendix Fig 1 ({'in-cache' if size == 'small' else 'in-memory'}): "
            "insert time ns/key"
        )
        rows = run_panel(size)
        print(format_speedup_table(rows, list(CONFIGS) + ["speedup"], digits=0))


def test_insert_speedup_on_long_keys():
    """Wikipedia's insert win (~2x standalone) is robust; Hn's (~1.2x)
    sits within shared-box jitter, so it only gets a no-regression floor."""
    rows = run_panel("small")
    assert rows["Wp."]["speedup"] > 1.2
    assert rows["Hn"]["speedup"] > 0.9


def test_insert_benchmark(benchmark):
    work = workload("hn")
    hasher = hasher_configs(work, 1000)["ELH"]

    def build():
        table = LinearProbingTable(hasher, capacity=2048)
        for key in work.stored_small:
            table.insert(key, None)

    benchmark(build)


if __name__ == "__main__":
    main()
