"""Ablation — partitioning under key skew (Section 4.3's caveat).

The paper's variance analysis assumes unique keys and explicitly argues
that with heavy hitters "the unevenness comes from the existence of
heavy hitters rather than the quality of the hash function".  This
bench verifies the claim empirically: under a Zipf-duplicated workload,
full-key and Entropy-Learned partitioning show the *same* (hitter-
driven) imbalance, and the d-choice balancer from the appendix tames it
for both when items can be routed individually.
"""

import random

from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import train_model
from repro.datasets import hn_urls
from repro.partitioning.balance import DChoiceBalancer
from repro.partitioning.partitioner import Partitioner
from repro.partitioning.stats import max_overload, relative_std

NUM_FLOWS = 4_000
STREAM_LEN = 40_000
NUM_BINS = 32


def _skewed_stream():
    flows = hn_urls(NUM_FLOWS, seed=61)
    rng = random.Random(4)
    weights = [1.0 / (rank + 1) for rank in range(NUM_FLOWS)]
    return flows, rng.choices(flows, weights=weights, k=STREAM_LEN)


def run_comparison():
    flows, stream = _skewed_stream()
    model = train_model(flows, fixed_dataset=True)
    elh = model.hasher_for_partitioning(STREAM_LEN, NUM_BINS, mode="relative")
    full = EntropyLearnedHasher.full_key(elh.base.name)

    rows = {}
    for label, hasher in (("full-key", full), ("ELH", elh)):
        counts = Partitioner(hasher, NUM_BINS).partition(stream, "pure").counts
        rows[f"{label} hash-partition"] = {
            "rel_std": relative_std(counts),
            "max_overload": max_overload(counts),
        }
        balancer = DChoiceBalancer(hasher, num_bins=NUM_BINS, choices=2)
        balancer.assign(stream)
        rows[f"{label} 2-choice"] = {
            "rel_std": relative_std(balancer.loads),
            "max_overload": max_overload(balancer.loads),
        }
    return rows


def main():
    print_header(f"Ablation: Zipf-skewed stream ({STREAM_LEN} items, "
                 f"{NUM_FLOWS} flows) into {NUM_BINS} bins")
    rows = run_comparison()
    print(format_speedup_table(rows, ["rel_std", "max_overload"],
                               row_title="strategy", digits=3))
    print()
    print("Claim: skew-driven imbalance is identical for full-key and "
          "ELH hashing (the hash is not the culprit); d-choice routing "
          "roughly halves the worst overload for both (each flow still "
          "has only d candidate bins).")


def test_skew_hurts_both_equally():
    rows = run_comparison()
    full = rows["full-key hash-partition"]["rel_std"]
    elh = rows["ELH hash-partition"]["rel_std"]
    assert abs(full - elh) < 0.5 * max(full, elh)


def test_two_choice_reduces_skew():
    """Each flow has two candidate bins, so a heavy hitter's copies can
    split across two bins instead of one — roughly halving the worst
    overload, which is what d=2 can promise under flow affinity."""
    rows = run_comparison()
    for label in ("full-key", "ELH"):
        hashed = rows[f"{label} hash-partition"]["max_overload"]
        balanced = rows[f"{label} 2-choice"]["max_overload"]
        assert balanced < hashed
        assert balanced < 2.5


def test_skew_partition_benchmark(benchmark):
    flows, stream = _skewed_stream()
    hasher = EntropyLearnedHasher.full_key("crc32")
    p = Partitioner(hasher, NUM_BINS)
    benchmark(lambda: p.partition(stream[:5000], "pure"))


if __name__ == "__main__":
    main()
