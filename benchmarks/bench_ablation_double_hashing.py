"""Ablation — double hashing (one 64-bit hash split) vs k independent hashes.

The paper's filters compute a single 64-bit hash and split it into two
32-bit halves for Kirsch-Mitzenmacher double hashing [37].  This ablation
compares that against computing k independently seeded hashes: FPR must
be statistically indistinguishable while lookup cost drops by ~k×.
"""

import random

from repro.bench.harness import time_callable
from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.filters.bloom import BloomFilter
from repro.filters.reduction import double_hash_probes

NUM_KEYS = 4_000
NUM_BITS = 1 << 16
NUM_HASHES = 3


class KIndependentBloom:
    """Reference filter computing k independently seeded full hashes."""

    def __init__(self, hasher, num_bits, num_hashes):
        self.num_bits = num_bits
        self._hashers = [hasher.with_seed(i + 1) for i in range(num_hashes)]
        self._bits = [False] * num_bits

    def add(self, key):
        for h in self._hashers:
            self._bits[h(key) % self.num_bits] = True

    def contains(self, key):
        return all(self._bits[h(key) % self.num_bits] for h in self._hashers)


def run_comparison():
    rng = random.Random(42)
    stored = [rng.randbytes(24) for _ in range(NUM_KEYS)]
    negatives = [rng.randbytes(24) for _ in range(2 * NUM_KEYS)]
    probes = stored[:1000] + negatives[:1000]

    base = EntropyLearnedHasher.full_key("xxh3")
    double = BloomFilter(base, num_bits=NUM_BITS, num_hashes=NUM_HASHES)
    independent = KIndependentBloom(base, NUM_BITS, NUM_HASHES)
    for key in stored:
        double.add(key)
        independent.add(key)

    rows = {
        "double hashing": {
            "lookup_ns": time_callable(
                lambda: [double.contains(k) for k in probes]
            ) * 1e9 / len(probes),
            "fpr": sum(double.contains(k) for k in negatives) / len(negatives),
        },
        "k independent": {
            "lookup_ns": time_callable(
                lambda: [independent.contains(k) for k in probes]
            ) * 1e9 / len(probes),
            "fpr": sum(independent.contains(k) for k in negatives) / len(negatives),
        },
    }
    rows["double hashing"]["speedup"] = (
        rows["k independent"]["lookup_ns"] / rows["double hashing"]["lookup_ns"]
    )
    rows["k independent"]["speedup"] = 1.0
    return rows


def main():
    print_header(f"Ablation: double hashing vs {NUM_HASHES} independent "
                 "hashes (regular Bloom filter, scalar lookups)")
    rows = run_comparison()
    print(format_speedup_table(rows, ["lookup_ns", "fpr", "speedup"],
                               row_title="scheme", digits=4))


def test_double_hashing_faster():
    rows = run_comparison()
    assert rows["double hashing"]["speedup"] > 1.5


def test_fpr_statistically_equivalent():
    rows = run_comparison()
    a = rows["double hashing"]["fpr"]
    b = rows["k independent"]["fpr"]
    assert abs(a - b) < 0.02


def test_double_hash_probe_positions_cover_range():
    positions = double_hash_probes(0xDEADBEEFCAFEBABE, 64, 1_000_003)
    assert len(set(positions)) > 60  # stride is odd -> near-distinct


def test_double_hashing_benchmark(benchmark):
    rng = random.Random(1)
    base = EntropyLearnedHasher.full_key("xxh3")
    f = BloomFilter(base, num_bits=NUM_BITS, num_hashes=NUM_HASHES)
    keys = [rng.randbytes(24) for _ in range(500)]
    for k in keys:
        f.add(k)
    benchmark(lambda: [f.contains(k) for k in keys])


if __name__ == "__main__":
    main()
