"""Appendix experiment 2 — separate-chaining hash-table probe time.

The std::unordered_map stand-in: a separate-chaining table probed across
datasets, sizes and hit rates with full-key wyhash vs Entropy-Learned
wyhash.

Claims to reproduce: ELH speeds up chaining tables too, with slightly
smaller factors than SwissTable because the chaining baseline spends
more of its probe outside the hash function.
"""

try:
    from benchmarks.common import (
        DATASETS, DISPLAY, build_table, measure_probe_ns, workload,
    )
except ImportError:
    from common import (
        DATASETS, DISPLAY, build_table, measure_probe_ns, workload,
    )

from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.tables.chaining import SeparateChainingTable


def run_panel(size: str, hit_rate: float):
    rows = {}
    for name in DATASETS:
        work = workload(name)
        stored = work.stored_small if size == "small" else work.stored_large
        probes = work.probes(hit_rate, stored)
        configs = {
            "wyhash": EntropyLearnedHasher.full_key("wyhash"),
            "ELH": work.model.hasher_for_chaining_table(len(stored)),
        }
        row = {}
        for config, hasher in configs.items():
            table = build_table(SeparateChainingTable, hasher, stored)
            hash_ns, access_ns = measure_probe_ns(table, probes)
            row[config] = hash_ns + access_ns
        row["speedup"] = row["wyhash"] / row["ELH"]
        rows[DISPLAY[name]] = row
    return rows


def main():
    for size in ("small", "large"):
        for hit_rate in (0.0, 1.0):
            print_header(
                f"Appendix Fig 3 ({'in-cache' if size == 'small' else 'in-memory'}, "
                f"hit rate = {int(hit_rate)}): chaining probe ns/key"
            )
            rows = run_panel(size, hit_rate)
            print(format_speedup_table(rows, ["wyhash", "ELH", "speedup"], digits=1))


def test_chaining_speedups_on_long_keys():
    rows = run_panel("small", 0.0)
    assert rows["Wp."]["speedup"] > 1.5
    assert rows["Hn"]["speedup"] > 1.2


def test_chaining_probe_benchmark(benchmark):
    work = workload("google")
    hasher = work.model.hasher_for_chaining_table(1000)
    table = build_table(SeparateChainingTable, hasher, work.stored_small)
    probes = work.probes(0.5, work.stored_small, num=2000)
    benchmark(lambda: table.probe_batch_hashed(probes, hasher.hash_batch(probes)))


if __name__ == "__main__":
    main()
