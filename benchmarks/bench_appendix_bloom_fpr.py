"""Appendix experiment 5 — regular (non-blocked) Bloom filters at 1% FPR.

Same setup as Figure 10 but with the classic bit-array filter and a
tighter false-positive budget.  Claims to reproduce: the speedups carry
over to regular filters and the measured FPR stays within the allowed
increase of the full-key filter's.
"""

try:
    from benchmarks.common import DATASETS, DISPLAY, workload
except ImportError:
    from common import DATASETS, DISPLAY, workload

from repro.bench.harness import time_callable
from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.filters.bloom import BloomFilter

TARGET_FPR = 0.01
ADDED_FPR = 0.005


def run_panel(size: str):
    rows = {}
    for name in DATASETS:
        work = workload(name)
        stored = work.stored_small if size == "small" else work.stored_large
        probes = work.probes(0.5, stored)
        negatives = work.missing[:4000]
        elh = work.model.hasher_for_bloom_filter(len(stored), ADDED_FPR)
        configs = {
            "xxh3": EntropyLearnedHasher.full_key("xxh3"),
            "ELH": EntropyLearnedHasher(elh.partial_key, base="xxh3"),
        }
        row = {}
        for label, hasher in configs.items():
            f = BloomFilter.for_items(hasher, len(stored), TARGET_FPR)
            f.add_batch(stored)
            seconds = time_callable(lambda f=f: f.contains_batch(probes))
            row[f"{label}_ns"] = seconds * 1e9 / len(probes)
            row[f"{label}_fpr"] = f.measured_fpr(negatives)
        row["speedup"] = row["xxh3_ns"] / row["ELH_ns"]
        rows[DISPLAY[name]] = row
    return rows


def main():
    for size in ("small", "large"):
        print_header(f"Appendix Fig 6 ({size} data): regular Bloom filter "
                     f"at {TARGET_FPR:.0%} FPR")
        rows = run_panel(size)
        print(format_speedup_table(
            rows,
            ["xxh3_ns", "ELH_ns", "speedup", "xxh3_fpr", "ELH_fpr"],
            digits=3,
        ))


def test_regular_filter_fpr_budget():
    rows = run_panel("small")
    for name, row in rows.items():
        assert row["ELH_fpr"] <= row["xxh3_fpr"] + ADDED_FPR + 0.01, (name, row)


def test_regular_filter_speedups():
    rows = run_panel("small")
    assert max(rows[d]["speedup"] for d in ("Wp.", "Hn", "Ggle")) > 1.3


def test_regular_bloom_benchmark(benchmark):
    work = workload("hn")
    hasher = EntropyLearnedHasher.full_key("xxh3")
    f = BloomFilter.for_items(hasher, 1000, TARGET_FPR)
    f.add_batch(work.stored_small)
    probes = work.probes(0.5, work.stored_small, num=2000)
    benchmark(lambda: f.contains_batch(probes))


if __name__ == "__main__":
    main()
