"""Table 5 — partitioning quality: normalized relative standard deviation.

For each dataset and partition count, the relative standard deviation of
per-bin counts under Entropy-Learned CRC32 divided by the same quantity
under full-key CRC32.  The paper's claim: the ratio concentrates around
1 (ELH partitions are as even as full-key ones), with the worst case
(Hn, 64 partitions) still giving an absolute rel-std under 3%.
"""

try:
    from benchmarks.common import DATASETS, DISPLAY, workload
except ImportError:
    from common import DATASETS, DISPLAY, workload

from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.partitioning.partitioner import Partitioner
from repro.partitioning.stats import normalized_relative_std, relative_std

NUM_PARTITIONS = (64, 1024)


def run_table():
    ratio_rows = {}
    abs_rows = {}
    for name in DATASETS:
        work = workload(name)
        keys = work.stored_large
        ratio_row = {}
        abs_row = {}
        for m in NUM_PARTITIONS:
            elh_hasher = work.model.hasher_for_partitioning(
                len(keys), m, mode="relative"
            )
            elh_hasher = EntropyLearnedHasher(elh_hasher.partial_key, base="crc32")
            full = EntropyLearnedHasher.full_key("crc32")
            elh_counts = Partitioner(elh_hasher, m).partition(keys, "pure").counts
            full_counts = Partitioner(full, m).partition(keys, "pure").counts
            ratio_row[str(m)] = normalized_relative_std(elh_counts, full_counts)
            abs_row[str(m)] = relative_std(elh_counts)
        ratio_rows[DISPLAY[name]] = ratio_row
        abs_rows[DISPLAY[name]] = abs_row
    return ratio_rows, abs_rows


def main():
    ratio_rows, abs_rows = run_table()
    print_header("Table 5: normalized relative std dev (ELH / full-key)")
    print(format_speedup_table(ratio_rows, [str(m) for m in NUM_PARTITIONS]))
    print_header("Absolute relative std dev of ELH partitions")
    print(format_speedup_table(abs_rows, [str(m) for m in NUM_PARTITIONS], digits=4))


def test_ratios_concentrate_near_one():
    ratio_rows, _ = run_table()
    values = [v for row in ratio_rows.values() for v in row.values()]
    assert all(0.3 < v < 3.0 for v in values), values
    # Median near 1.
    values.sort()
    assert 0.7 < values[len(values) // 2] < 1.5


def test_absolute_quality_acceptable():
    """ELH partitions stay within a few percent of the mean at m=64."""
    _, abs_rows = run_table()
    for name, row in abs_rows.items():
        assert row["64"] < 0.15, (name, row)


def test_partition_quality_benchmark(benchmark):
    work = workload("uuid")
    hasher = EntropyLearnedHasher.full_key("crc32")
    p = Partitioner(hasher, 64)
    benchmark(lambda: p.partition(work.stored_large[:4000], "pure").counts)


if __name__ == "__main__":
    main()
