"""Figure 8 — memory-level parallelism and time breakdown (model).

The paper measures MLP (L1D misses per cycle) with hardware counters;
Python cannot, so this bench evaluates the documented analytic pipeline
model (see :mod:`repro.simulation.pipeline` and DESIGN.md's substitution
note) on the same configurations: Hacker News and Google datasets,
in-memory tables, hit rate 1, full-key wyhash vs Entropy-Learned wyhash.

Claims to reproduce: (a) ELH sustains higher MLP than full-key hashing;
(b) ELH reduces both instruction count and memory waiting time.
"""

try:
    from benchmarks.common import DISPLAY, workload
except ImportError:
    from common import DISPLAY, workload

from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.simulation.cost import probe_work
from repro.simulation.pipeline import PipelineModel

DATASETS = ("hn", "google")


def model_rows():
    model = PipelineModel()
    rows = {}
    for name in DATASETS:
        work = workload(name)
        stored = work.stored_large
        full = EntropyLearnedHasher.full_key("wyhash")
        elh = work.model.hasher_for_probing_table(len(stored))
        for label, hasher in (("wyhash", full), ("ELH", elh)):
            work_model = probe_work(
                hasher, stored, hit_rate=1.0, expected_comparisons_hit=1.0
            )
            instructions = model.instructions_per_probe(work_model)
            mlp = model.memory_level_parallelism(work_model, "memory")
            time_ns = model.probe_time_ns(work_model, "memory")
            compute_ns = instructions / model.issue_width / model.clock_ghz
            rows[f"{DISPLAY[name]}/{label}"] = {
                "MLP": mlp,
                "instr": instructions,
                "instr_ns": compute_ns,
                "mem_ns": max(0.0, time_ns - compute_ns),
                "total_ns": time_ns,
            }
    return rows


def main():
    print_header("Figure 8 (analytic model): MLP and probe-time breakdown, "
                 "in-memory, hit rate = 1")
    rows = model_rows()
    print(format_speedup_table(
        rows, ["MLP", "instr", "instr_ns", "mem_ns", "total_ns"],
        row_title="dataset/config", digits=1,
    ))
    print()
    print("Paper reference (measured on Ivy Bridge): ELH raises MLP from "
          "~1.5-1.7 to ~2.0-2.3 and cuts both instruction and memory time; "
          "qualitative agreement is the target here.")


def test_elh_raises_mlp_and_cuts_time():
    rows = model_rows()
    for name in ("Hn", "Ggle"):
        full = rows[f"{name}/wyhash"]
        elh = rows[f"{name}/ELH"]
        assert elh["MLP"] >= full["MLP"]
        assert elh["instr"] < full["instr"]
        assert elh["total_ns"] <= full["total_ns"]


def test_model_evaluation_benchmark(benchmark):
    benchmark(model_rows)


if __name__ == "__main__":
    main()
