"""Benchmark harness reproducing every table and figure of the paper's
evaluation (Section 6 + appendix C).  See DESIGN.md section 4 for the
experiment index and EXPERIMENTS.md for recorded results.

Each ``bench_*.py`` file is both:

* a pytest-benchmark module (``pytest benchmarks/ --benchmark-only``)
  timing a representative slice of the experiment, and
* a runnable script (``python benchmarks/bench_<x>.py``) printing the
  full paper-style table/series.

``python benchmarks/run_all.py`` regenerates everything.
"""
