"""Appendix experiment 3 — robustness under train/test mismatch.

Hash tables storing and probing Hacker News URLs, with the byte selector
trained on (a) Hacker News itself, (b) Google URLs (different but still
random on the chosen bytes), and (c) UUIDs (very different structure).

Claims to reproduce: (a) and (b) keep their speedups; (c) must not be
*worse* than full-key hashing — the model falls back (or the learned
positions still separate keys) and correctness is never at risk.
"""

try:
    from benchmarks.common import build_table, measure_probe_ns, workload
except ImportError:
    from common import build_table, measure_probe_ns, workload

from repro.bench.harness import build_probe_mix
from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import train_model
from repro.datasets import google_urls, uuid_keys
from repro.tables.probing import EntropyAwareProbingTable, LinearProbingTable

TRAINERS = ("Hn", "Ggle", "UUID")


def _models():
    hn = workload("hn")
    return hn, {
        "Hn": hn.model,
        "Ggle": train_model(google_urls(8000, seed=71), seed=5),
        "UUID": train_model(uuid_keys(8000, seed=72), seed=5),
    }


def run_table(hit_rate: float):
    hn, models = _models()
    stored = hn.stored_large[:8000]
    probes = build_probe_mix(stored, hn.missing, hit_rate, 4000, seed=7)
    full = EntropyLearnedHasher.full_key("wyhash")
    full_table = build_table(LinearProbingTable, full, stored)
    full_ns = sum(measure_probe_ns(full_table, probes))

    rows = {}
    for trainer_name, model in models.items():
        # The full Section 5 infrastructure: insert-time monitoring plus
        # the full-key fallback when observed collisions blow the entropy
        # budget (this is what protects the UUID-trained configuration).
        table = EntropyAwareProbingTable(model, capacity=int(len(stored) / 0.7))
        for key in stored:
            table.insert(key, key)
        hash_ns, access_ns = measure_probe_ns(table, probes)
        total = hash_ns + access_ns
        rows[f"trained w/ {trainer_name}"] = {
            "ns": total,
            "full_ns": full_ns,
            "speedup": full_ns / total,
            "words": len(table.hasher.partial_key.positions),
            "fell_back": float(table.fallen_back),
        }
    return rows


def main():
    for hit_rate in (0.0, 1.0):
        print_header(
            f"Appendix Fig 2: probing HN data, hit rate = {int(hit_rate)} "
            "(trained on different datasets)"
        )
        rows = run_table(hit_rate)
        print(format_speedup_table(
            rows, ["ns", "full_ns", "speedup", "words", "fell_back"],
            row_title="configuration", digits=2,
        ))


def test_matching_training_speeds_up():
    rows = run_table(0.0)
    assert rows["trained w/ Hn"]["speedup"] > 1.2


def test_mismatched_training_never_catastrophic():
    """The Section 5 robustness claim: even UUID-trained positions must
    not make probes dramatically slower than full-key hashing."""
    rows = run_table(1.0)
    for config, row in rows.items():
        assert row["speedup"] > 0.5, (config, row)


def test_correctness_under_mismatch():
    hn, models = _models()
    stored = hn.stored_large[:2000]
    table = EntropyAwareProbingTable(models["UUID"], capacity=4096)
    for key in stored:
        table.insert(key, key)
    assert all(table.get(k) == k for k in stored)
    assert all(table.get(k) is None for k in hn.missing[:2000])


def test_uuid_training_triggers_fallback():
    """The badly mistrained configuration must detect itself."""
    rows = run_table(0.0)
    assert rows["trained w/ UUID"]["fell_back"] == 1.0


def test_robustness_benchmark(benchmark):
    hn, models = _models()
    stored = hn.stored_large[:2000]
    hasher = models["Ggle"].hasher_for_probing_table(len(stored))
    table = build_table(LinearProbingTable, hasher, stored)
    probes = build_probe_mix(stored, hn.missing, 0.5, 1000, seed=3)
    benchmark(lambda: table.probe_batch_hashed(probes, hasher.hash_batch(probes)))


if __name__ == "__main__":
    main()
