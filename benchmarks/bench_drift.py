"""Drift benchmark — throughput recovery through an online plan swap.

Drives a ``relearn=True`` :class:`repro.service.Service` through the
three phases of the drift drill: measure partial-key ops/s on the
trained distribution, shift the key stream so the deployed byte
positions lose their entropy (``drift_key`` appends the watched bytes
after a separator, exactly the rewrite the ``drift`` fault kind
performs), then let the detector -> relearner -> swap pipeline run and
measure ops/s again on the drifted stream.  The headline number is
``recovery_ratio`` — post-swap throughput over pre-drift throughput —
which the acceptance bar requires to be >= 0.9 on both execution
backends.  A ``relearn=False`` contrast record shows what the same
drift costs without the re-learner.

``drift_records()`` returns JSON-able records; ``main()`` (and
``run_all.py``) writes them to ``BENCH_drift.json`` at the repo root.
Every record carries ``cpu_cores`` and the full detector window
configuration so a committed artifact is interpretable on its own
(single-core hosts run the process backend without parallelism, like
``BENCH_service.json``'s scaling records).
"""

import json
import os
import subprocess
import time

from repro.bench.harness import latency_summary_ns
from repro.bench.reporting import print_header
from repro.core.trainer import train_model
from repro.datasets import google_urls
from repro.drift import deployed_plan, drift_key, required_entropy_for_spec
from repro.service import Service, ServiceClient, run_service_workload
from repro.workloads import DriftingWorkloadGenerator, Operation

NUM_KEYS = 1_200
SHARDS = 3
BACKEND = "chaining"
MEASURE_OPS = 1_500        # read ops per timed phase (all hits)
DRIFT_MIX_OPS = 900        # mixed ops emitted through the drifting generator
MEASURE_REPEATS = 5        # best-of repeats per timed phase
LATENCY_SAMPLE = 200       # scalar round trips behind each p50/p99 field
# The swap needs the drifted stream to keep flowing: the reservoirs age
# out pre-drift keys epoch by epoch (pre-drift keys and their drifted
# twins agree on every in-range byte, so a mixed sample caps the
# retrained entropy below certification).  Each settle round is one
# read sweep over the drifted key set.
MAX_SETTLE_ROUNDS = 30

DRIFT_WINDOW = 128
DRIFT_MARGIN = 1.0
DRIFT_PATIENCE = 2
# Certification needs the re-train sample to cover the required
# entropy: the confidence bound is 2*log2(samples / C) with C = 20,
# counted over *distinct* sampled keys, and this drill's per-shard
# tables (capacity 800 -> 1024 buckets at load 1.0) require 11.0 bits,
# i.e. >= ~906 distinct keys.  Drift concentrates traffic (every
# drifted key hashes alike on the dying positions, so one shard takes
# the whole stream and the idle shards' stale reservoirs are excluded)
# — a single shard's reservoir must clear the bar alone, and 2048
# slots drawn from the 1200-key drifted population yield ~980 distinct.
DRIFT_RESERVOIR = 2_048
MIN_DWELL = 8
MIN_SAMPLE = 48
ADAPT_EVERY = 4


def _build(model, keys, execution, relearn):
    service = Service(
        num_shards=SHARDS, backend=BACKEND, model=model,
        # Capacity holds the original set plus its drifted rewrite.
        capacity=2 * len(keys), seed=5, execution=execution,
        relearn=relearn, drift_window=DRIFT_WINDOW,
        drift_margin=DRIFT_MARGIN, drift_patience=DRIFT_PATIENCE,
        drift_reservoir=DRIFT_RESERVOIR, min_dwell=MIN_DWELL,
        min_sample=MIN_SAMPLE, adapt_every=ADAPT_EVERY,
    )
    client = ServiceClient(service)
    client.put_many((key, b"v0") for key in keys)
    service.drain()
    return service, client


def _timed_reads(client, service, keys, ops=MEASURE_OPS,
                 repeats=MEASURE_REPEATS):
    """Best-of-``repeats`` ops/s for a read sweep over stored keys."""
    operations = [
        Operation("read", keys[i % len(keys)]) for i in range(ops)
    ]
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        run_service_workload(client, operations)
        service.drain()
        elapsed = time.perf_counter() - start
        best = max(best, ops / elapsed if elapsed else 0.0)
    return best


def _get_latency(client, keys, n=LATENCY_SAMPLE):
    samples = []
    for key in keys[:n]:
        start = time.perf_counter()
        client.get(key)
        samples.append(time.perf_counter() - start)
    return latency_summary_ns(samples)


def drift_drill(execution="inline", relearn=True, num_keys=NUM_KEYS,
                measure_ops=MEASURE_OPS, repeats=MEASURE_REPEATS):
    """Run one preload -> measure -> drift -> swap -> measure drill."""
    keys = google_urls(num_keys, seed=11)
    model = train_model(keys, fixed_dataset=True)
    service, client = _build(model, keys, execution, relearn)
    try:
        plan, _ = deployed_plan(model, required_entropy_for_spec(service._spec))
        if plan is None:
            raise RuntimeError("model deployed a full-key hasher; "
                               "there is no partial-key plan to drift")
        positions = list(plan.positions)
        word_size = plan.word_size

        pre_ops = _timed_reads(client, service, keys, measure_ops, repeats)

        # Drift phase: a YCSB mix whose every key is rewritten from op
        # zero, an explicit put of the full drifted set so the post-swap
        # sweep is all hits like the pre-drift one, and deletion of the
        # pre-drift population — drift replaces a key population, it
        # does not grow it, and the recovery claim compares equal-sized
        # resident sets.
        generator = DriftingWorkloadGenerator(
            keys, positions, word_size=word_size, drift_after=0,
            mix="A", seed=29,
        )
        drift_start = time.perf_counter()
        run_service_workload(client, generator.operations(DRIFT_MIX_OPS))
        drifted = [drift_key(key, positions, word_size=word_size)
                   for key in keys]
        client.put_many((key, b"v1") for key in drifted)
        for key in keys:
            client.delete(key)
        service.drain()
        settle_ops = [Operation("read", key) for key in drifted]
        rounds = 0
        while (relearn and service.plan_swaps < 1
               and rounds < MAX_SETTLE_ROUNDS):
            run_service_workload(client, settle_ops)
            service.drain()
            rounds += 1
        drift_elapsed = time.perf_counter() - drift_start

        post_ops = _timed_reads(client, service, drifted, measure_ops,
                                repeats)
        stats = service.stats()
        record = {
            "benchmark": (f"drift_recovery_{execution}" if relearn
                          else f"drift_no_relearn_{execution}"),
            "execution": execution,
            "relearn": relearn,
            "shards": SHARDS,
            "backend": BACKEND,
            "num_keys": num_keys,
            "cpu_cores": os.cpu_count() or 1,
            "drift_window": DRIFT_WINDOW,
            "drift_margin": DRIFT_MARGIN,
            "drift_patience": DRIFT_PATIENCE,
            "drift_reservoir": DRIFT_RESERVOIR,
            "min_dwell": MIN_DWELL,
            "min_sample": MIN_SAMPLE,
            "adapt_every": ADAPT_EVERY,
            "measure_ops": measure_ops,
            "measure_repeats": repeats,
            "drift_mix_ops": DRIFT_MIX_OPS,
            "drifted_ops_emitted": generator.drifted_ops,
            "ops_per_second_pre_drift": pre_ops,
            "ops_per_second_post_swap": post_ops,
            # Canonical throughput for the regression gate: the state
            # the service settles into after the drill.
            "ops_per_second": post_ops,
            "recovery_ratio": post_ops / pre_ops if pre_ops else 0.0,
            "drift_phase_s": drift_elapsed,
            "settle_rounds": rounds,
            "plan_swaps": stats["plan_swaps"],
            "lost_acks": client.lost_acks,
            "client_retries": client.retries,
        }
        drift_stats = stats.get("drift")
        if drift_stats:
            record["trips"] = sum(
                shard["trips"] for shard in drift_stats["shards"].values()
            )
            record["stay_decisions"] = drift_stats["stay_decisions"]
            record["noop_suppressed"] = drift_stats["noop_suppressed"]
        record.update(_get_latency(client, drifted))
        return record
    finally:
        service.close()


def drift_records():
    records = [drift_drill(execution="inline", relearn=True)]
    records.append(drift_drill(execution="process", relearn=True))
    records.append(drift_drill(execution="inline", relearn=False))
    return records


def write_report(records, path=None):
    if path is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        path = os.path.join(repo_root, "BENCH_drift.json")
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except OSError:
        rev = "unknown"
    with open(path, "w") as f:
        json.dump({
            "git_rev": rev,
            "generated_at_unix": time.time(),
            "records": records,
        }, f, indent=2)
    print(f"\n[wrote {len(records)} drift record(s) to {path}]")
    return path


def main():
    print_header(f"Drift: re-learn + plan swap recovery "
                 f"({SHARDS} {BACKEND} shards, {NUM_KEYS} keys)")
    records = drift_records()
    for r in records:
        print(f"{r['benchmark']:28s} pre {r['ops_per_second_pre_drift']:9.0f}"
              f" ops/s  post {r['ops_per_second_post_swap']:9.0f} ops/s  "
              f"recovery {r['recovery_ratio']:.2f}  "
              f"swaps {r['plan_swaps']}  lost_acks {r['lost_acks']}")
    write_report(records)
    return records


# ----------------------------------------------------------------- tests
# Collected only when pytest targets benchmarks/ explicitly.

def test_drift_recovery_inline():
    record = drift_drill(execution="inline", relearn=True)
    assert record["plan_swaps"] >= 1
    assert record["lost_acks"] == 0
    assert record["recovery_ratio"] >= 0.9


def test_drift_recovery_process():
    record = drift_drill(execution="process", relearn=True)
    assert record["plan_swaps"] >= 1
    assert record["lost_acks"] == 0
    assert record["recovery_ratio"] >= 0.9


def test_no_relearn_never_swaps():
    record = drift_drill(execution="inline", relearn=False,
                         measure_ops=400, repeats=1)
    assert record["plan_swaps"] == 0
    assert record["lost_acks"] == 0


if __name__ == "__main__":
    main()
