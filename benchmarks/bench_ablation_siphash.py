"""Ablation — cryptographic vs non-cryptographic base hashing.

The related-work section notes cryptographic hashing (SipHash) remains
about an order of magnitude slower than non-cryptographic hashing, and
that Entropy-Learned Hashing composes with *any* base hash.  This bench
measures both claims: the wyhash↔SipHash gap on full keys, and how much
of SipHash's cost ELH recovers by shrinking its input (useful when an
application wants keyed/flooding-resistant hashing and speed).
"""

try:
    from benchmarks.common import workload
except ImportError:
    from common import workload

from repro.bench.harness import time_callable
from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher

NUM_KEYS = 1_500


def run_comparison():
    work = workload("google")
    keys = work.stored_large[:NUM_KEYS]
    elh_positions = work.model.hasher_for_probing_table(NUM_KEYS).partial_key

    configs = {
        "wyhash full": EntropyLearnedHasher.full_key("wyhash"),
        "siphash full": EntropyLearnedHasher.full_key("siphash"),
        "ELH wyhash": EntropyLearnedHasher(elh_positions, base="wyhash"),
        "ELH siphash": EntropyLearnedHasher(elh_positions, base="siphash"),
    }
    rows = {}
    for label, hasher in configs.items():
        # SipHash has no numpy kernel: the scalar loop is the honest
        # path for all four configs here.
        seconds = time_callable(
            lambda h=hasher: [h(k) for k in keys], repeats=2
        )
        rows[label] = {"ns_per_key": seconds * 1e9 / len(keys)}
    base = rows["wyhash full"]["ns_per_key"]
    for label in rows:
        rows[label]["vs_wyhash"] = rows[label]["ns_per_key"] / base
    return rows


def main():
    print_header("Ablation: cryptographic (SipHash-2-4) vs "
                 "non-cryptographic base hashing (scalar, Google URLs)")
    rows = run_comparison()
    print(format_speedup_table(rows, ["ns_per_key", "vs_wyhash"],
                               row_title="config", digits=2))
    print()
    print("Claims: SipHash costs a multiple of wyhash on full keys "
          "(paper: ~an order of magnitude in C); ELH recovers most of "
          "that by shrinking the hashed input.")


def test_siphash_slower_than_wyhash():
    rows = run_comparison()
    assert rows["siphash full"]["ns_per_key"] > 1.5 * rows["wyhash full"]["ns_per_key"]


def test_elh_rescues_siphash():
    rows = run_comparison()
    assert rows["ELH siphash"]["ns_per_key"] < rows["siphash full"]["ns_per_key"] / 2


def test_siphash_benchmark(benchmark):
    hasher = EntropyLearnedHasher.full_key("siphash")
    work = workload("google")
    keys = work.stored_small[:300]
    benchmark(lambda: [hasher(k) for k in keys])


if __name__ == "__main__":
    main()
