"""Run every benchmark's paper-style report in sequence.

Usage::

    python benchmarks/run_all.py            # everything
    python benchmarks/run_all.py fig6 tbl4  # filter by substring

The output of a full run is what EXPERIMENTS.md records.
"""

import importlib
import sys
import time

MODULES = [
    "bench_fig5_entropy_vs_words",
    "bench_fig6_probe_time",
    "bench_fig7_breakdown",
    "bench_fig8_mlp_model",
    "bench_fig9_scaling",
    "bench_fig10_bloom",
    "bench_table4_partitioning",
    "bench_table5_partition_quality",
    "bench_fig11_large_keys",
    "bench_table6_training_time",
    "bench_appendix_insert",
    "bench_appendix_chaining",
    "bench_appendix_robustness",
    "bench_appendix_dependent",
    "bench_appendix_bloom_fpr",
    "bench_appendix_threads",
    "bench_ablation_word_size",
    "bench_ablation_siphash",
    "bench_ablation_skew",
    "bench_ablation_double_hashing",
    "bench_ablation_filter_zoo",
    "bench_ablation_tags",
    "bench_ablation_reduction",
    "bench_extension_lsm",
    "bench_extension_vector_table",
    "bench_extension_ycsb",
]


def main(filters):
    selected = [
        name for name in MODULES
        if not filters or any(f in name for f in filters)
    ]
    overall_start = time.perf_counter()
    for name in selected:
        start = time.perf_counter()
        try:
            module = importlib.import_module(name)
        except ImportError:
            module = importlib.import_module(f"benchmarks.{name}")
        module.main()
        print(f"\n[{name} finished in {time.perf_counter() - start:.1f}s]")
    print(f"\nTotal: {time.perf_counter() - overall_start:.1f}s "
          f"for {len(selected)} experiment(s)")


if __name__ == "__main__":
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    main(sys.argv[1:])
