"""Run every benchmark's paper-style report in sequence.

Usage::

    python benchmarks/run_all.py            # everything
    python benchmarks/run_all.py fig6 tbl4  # filter by substring
    python benchmarks/run_all.py engine     # smoke run; still emits JSON

The output of a full run is what EXPERIMENTS.md records.  Any selected
module that exposes ``bench_records()`` (currently ``bench_engine``)
also contributes machine-readable records, which are written to
``BENCH_engine.json`` at the repo root together with the git revision.

After the sweep, a per-benchmark wall-clock summary table is printed
and every ``BENCH_*.json`` artifact the selected modules produce is
validated against its required-field schema — a record missing e.g.
its ``latency_p50_ns``/``latency_p99_ns`` fields fails the run with
exit 1, so a refactor cannot silently stop reporting a number the
acceptance criteria read.

Performance gate::

    python benchmarks/run_all.py bench_engine --write-baseline
    python benchmarks/run_all.py bench_engine --check-regression

``--write-baseline`` snapshots ops/sec and p99 latency for the named
hot paths in ``BASELINE_TRACKED`` into ``BENCH_baseline.json``;
``--check-regression`` re-runs the selected modules and exits 1 when
any tracked path lost more than ``--regression-tolerance`` (default
10%) of its baseline throughput or grew its p99 by more than the same
fraction.  The default is meant for same-machine comparisons; CI
passes a much looser tolerance because hosted runners differ from the
machine that wrote the committed baseline.
"""

import argparse
import importlib
import json
import os
import subprocess
import sys
import time

MODULES = [
    "bench_engine",
    "bench_service",
    "bench_faults",
    "bench_frontdoor",
    "bench_similarity",
    "bench_drift",
    "bench_fig5_entropy_vs_words",
    "bench_fig6_probe_time",
    "bench_fig7_breakdown",
    "bench_fig8_mlp_model",
    "bench_fig9_scaling",
    "bench_fig10_bloom",
    "bench_table4_partitioning",
    "bench_table5_partition_quality",
    "bench_fig11_large_keys",
    "bench_table6_training_time",
    "bench_appendix_insert",
    "bench_appendix_chaining",
    "bench_appendix_robustness",
    "bench_appendix_dependent",
    "bench_appendix_bloom_fpr",
    "bench_appendix_threads",
    "bench_ablation_word_size",
    "bench_ablation_siphash",
    "bench_ablation_skew",
    "bench_ablation_double_hashing",
    "bench_ablation_filter_zoo",
    "bench_ablation_tags",
    "bench_ablation_reduction",
    "bench_extension_lsm",
    "bench_extension_vector_table",
    "bench_extension_ycsb",
]


# Required-field schema per machine-readable artifact.  "toplevel"
# keys must exist in the file; "record" fields must exist in every
# entry of its "records" list.  Fields only some records carry
# (per-kind extras) are deliberately not listed — this is a floor,
# not an exhaustive schema.
_LATENCY_FIELDS = ("latency_p50_ns", "latency_p99_ns", "latency_samples")
ARTIFACT_SCHEMAS = {
    "BENCH_engine.json": {
        "module": "bench_engine",
        "toplevel": ("git_rev", "generated_at_unix", "records"),
        "record": ("benchmark", "n_keys", "scalar_ns_per_key",
                   "batch_ns_per_key", "speedup") + _LATENCY_FIELDS,
    },
    "BENCH_service.json": {
        "module": "bench_service",
        "toplevel": ("git_rev", "generated_at_unix", "records"),
        "record": ("benchmark",) + _LATENCY_FIELDS,
    },
    "BENCH_faults.json": {
        "module": "bench_faults",
        "toplevel": ("git_rev", "generated_at_unix", "records"),
        "record": ("benchmark", "lost_acks") + _LATENCY_FIELDS,
    },
    "BENCH_frontdoor.json": {
        "module": "bench_frontdoor",
        "toplevel": ("git_rev", "generated_at_unix", "records"),
        "record": ("benchmark", "path", "execution", "connections",
                   "ops_per_second", "lost_acks") + _LATENCY_FIELDS,
    },
    "BENCH_similarity.json": {
        "module": "bench_similarity",
        "toplevel": ("git_rev", "generated_at_unix", "records"),
        # Speed and quality must travel together: every record pairs a
        # throughput number with the recall it was measured at.
        "record": ("benchmark", "ops_per_second",
                   "recall_at_10") + _LATENCY_FIELDS,
    },
    "BENCH_drift.json": {
        "module": "bench_drift",
        "toplevel": ("git_rev", "generated_at_unix", "records"),
        # A recovery claim is only interpretable next to the machine
        # and detector configuration it was measured under: every
        # record must carry both throughput phases, the ratio, and the
        # full window/dwell parameters alongside cpu_cores.
        "record": ("benchmark", "execution", "cpu_cores", "drift_window",
                   "min_dwell", "ops_per_second_pre_drift",
                   "ops_per_second_post_swap", "recovery_ratio",
                   "plan_swaps", "lost_acks") + _LATENCY_FIELDS,
    },
}


def validate_artifacts(selected):
    """Check required fields in each artifact a selected module wrote.

    Returns a list of human-readable problems (empty == all good).
    """
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    problems = []
    for filename, schema in ARTIFACT_SCHEMAS.items():
        if schema["module"] not in selected:
            continue
        path = os.path.join(repo_root, filename)
        if not os.path.exists(path):
            problems.append(f"{filename}: artifact was never written")
            continue
        try:
            with open(path) as f:
                report = json.load(f)
        except (OSError, ValueError) as exc:
            problems.append(f"{filename}: unreadable ({exc})")
            continue
        for key in schema["toplevel"]:
            if key not in report:
                problems.append(f"{filename}: missing top-level {key!r}")
        records = report.get("records")
        if not isinstance(records, list) or not records:
            problems.append(f"{filename}: no records")
            continue
        for i, record in enumerate(records):
            for field in schema["record"]:
                if field not in record:
                    name = record.get("benchmark", f"#{i}")
                    problems.append(
                        f"{filename}: record {name!r} missing {field!r}"
                    )
    return problems


# ------------------------------------------------------ regression gate

BASELINE_FILE = "BENCH_baseline.json"

# The named hot paths the perf gate watches: artifact -> record names.
# Every entry must expose a throughput (ops_per_second, or derivable
# from batch_ns_per_key) and a latency_p99_ns.
BASELINE_TRACKED = {
    "BENCH_engine.json": (
        "probing_probe", "bloom_contains", "partition_assign",
    ),
    "BENCH_service.json": (
        "service_ycsb_C_uniform", "service_ycsb_A_zipf_hot",
        "service_scaling_inline", "service_scaling_speedup",
    ),
    "BENCH_faults.json": (
        "chaos_throughput_0",
    ),
    "BENCH_drift.json": (
        "drift_recovery_inline",
    ),
}


def _repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _record_ops_per_second(record):
    if "ops_per_second" in record:
        return float(record["ops_per_second"])
    if record.get("batch_ns_per_key"):
        return 1e9 / float(record["batch_ns_per_key"])
    return None


def collect_baseline_entries(selected):
    """Read the tracked hot-path numbers out of the selected artifacts."""
    entries = {}
    for filename, names in BASELINE_TRACKED.items():
        schema = ARTIFACT_SCHEMAS.get(filename)
        if schema is None or schema["module"] not in selected:
            continue
        path = os.path.join(_repo_root(), filename)
        if not os.path.exists(path):
            continue
        with open(path) as f:
            records = {
                r.get("benchmark"): r
                for r in json.load(f).get("records", [])
            }
        for name in names:
            record = records.get(name)
            if record is None:
                continue
            entry = {
                "ops_per_second": _record_ops_per_second(record),
                "latency_p99_ns": record.get("latency_p99_ns"),
            }
            # Speedup records gate on the ratio, and the ratio is only
            # meaningful relative to the host's core count — carry both.
            if "speedup_process_vs_inline" in record:
                entry["speedup_process_vs_inline"] = (
                    record["speedup_process_vs_inline"]
                )
            if "cpu_cores" in record:
                entry["cpu_cores"] = record["cpu_cores"]
            entries[f"{filename}::{name}"] = entry
    return entries


def write_baseline(selected):
    entries = collect_baseline_entries(selected)
    path = os.path.join(_repo_root(), BASELINE_FILE)
    with open(path, "w") as f:
        json.dump({
            "git_rev": _git_rev(),
            "generated_at_unix": time.time(),
            "entries": entries,
        }, f, indent=2)
    print(f"\n[wrote {len(entries)} baseline entr(y/ies) to {path}]")
    return path


def check_regression(selected, tolerance):
    """Compare the fresh artifacts against the committed baseline.

    Returns human-readable problems; empty means no tracked hot path
    regressed beyond ``tolerance`` (fractional, e.g. 0.10 == 10%).
    """
    path = os.path.join(_repo_root(), BASELINE_FILE)
    if not os.path.exists(path):
        return [f"{BASELINE_FILE} not found; run --write-baseline first"]
    with open(path) as f:
        baseline = json.load(f).get("entries", {})
    current = collect_baseline_entries(selected)
    problems = []
    checked = 0
    skipped = []
    for name, now in sorted(current.items()):
        base = baseline.get(name)
        if "speedup_process_vs_inline" in now:
            # A process-vs-inline speedup is only verifiable with real
            # parallelism: on a single-core host the process backend
            # pays IPC overhead with nothing to buy it back, so gating
            # on the ratio would enforce an unverifiable number.
            now_cores = int(now.get("cpu_cores") or 1)
            base_cores = (
                int(base.get("cpu_cores") or 1) if base is not None else None
            )
            if now_cores <= 1 or (base_cores is not None and base_cores <= 1):
                skipped.append((name, min(
                    c for c in (now_cores, base_cores) if c is not None
                )))
                continue
            if base is None:
                continue
            checked += 1
            base_speedup = base.get("speedup_process_vs_inline")
            now_speedup = now.get("speedup_process_vs_inline")
            if (base_speedup and now_speedup
                    and now_speedup < base_speedup * (1.0 - tolerance)):
                problems.append(
                    f"{name}: speedup fell "
                    f"{1.0 - now_speedup / base_speedup:.1%} "
                    f"({base_speedup:.2f}x -> {now_speedup:.2f}x, "
                    f"tolerance {tolerance:.0%})"
                )
            continue
        if base is None:
            continue
        checked += 1
        base_ops, now_ops = base.get("ops_per_second"), now.get("ops_per_second")
        if base_ops and now_ops and now_ops < base_ops * (1.0 - tolerance):
            problems.append(
                f"{name}: ops/s fell {1.0 - now_ops / base_ops:.1%} "
                f"({base_ops:.0f} -> {now_ops:.0f}, tolerance "
                f"{tolerance:.0%})"
            )
        # p99 over a few hundred samples is far noisier than aggregate
        # throughput (a single scheduler hiccup moves it), so the
        # latency gate gets 3x the throughput tolerance — it catches a
        # tail-latency disaster, not a jitter.
        latency_tolerance = 3.0 * tolerance
        base_p99, now_p99 = base.get("latency_p99_ns"), now.get("latency_p99_ns")
        if base_p99 and now_p99 and now_p99 > base_p99 * (1.0 + latency_tolerance):
            problems.append(
                f"{name}: p99 grew {now_p99 / base_p99 - 1.0:.1%} "
                f"({base_p99:.0f}ns -> {now_p99:.0f}ns, tolerance "
                f"{latency_tolerance:.0%})"
            )
    for name, cores in skipped:
        print(f"  {name}: skipped_single_core (cpu_cores={cores}; "
              "process-vs-inline speedup is unverifiable without "
              "parallelism)")
    if not checked and not skipped:
        problems.append(
            "no tracked hot path overlaps the baseline; nothing checked"
        )
    else:
        print(f"\nregression check: {checked} hot path(s) vs "
              f"{BASELINE_FILE} at {tolerance:.0%} tolerance"
              + (f", {len(skipped)} skipped_single_core" if skipped else ""))
    return problems


def _git_rev():
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        ).stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def write_engine_report(records, path=None):
    """Persist engine benchmark records as ``BENCH_engine.json``."""
    if path is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        path = os.path.join(repo_root, "BENCH_engine.json")
    report = {
        "git_rev": _git_rev(),
        "generated_at_unix": time.time(),
        "records": records,
    }
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
    print(f"\n[wrote {len(records)} engine record(s) to {path}]")
    return path


def main(filters, check=False, write=False, tolerance=0.10):
    selected = [
        name for name in MODULES
        if not filters or any(f in name for f in filters)
    ]
    overall_start = time.perf_counter()
    engine_records = []
    failures = []
    timings = []
    for name in selected:
        start = time.perf_counter()
        try:
            try:
                module = importlib.import_module(name)
            except ImportError:
                module = importlib.import_module(f"benchmarks.{name}")
            module.main()
            if hasattr(module, "bench_records"):
                engine_records.extend(module.bench_records())
        except Exception as exc:  # noqa: BLE001 - keep the sweep going
            failures.append((name, exc))
            timings.append((name, time.perf_counter() - start, False))
            print(f"\n[{name} FAILED after "
                  f"{time.perf_counter() - start:.1f}s: {exc!r}]")
            continue
        timings.append((name, time.perf_counter() - start, True))
        print(f"\n[{name} finished in {time.perf_counter() - start:.1f}s]")
    if engine_records:
        write_engine_report(engine_records)

    total = time.perf_counter() - overall_start
    print("\nwall-clock summary:")
    width = max(len(name) for name, _, _ in timings) if timings else 0
    for name, seconds, ok in sorted(timings, key=lambda t: -t[1]):
        share = 100.0 * seconds / total if total else 0.0
        print(f"  {name:<{width}s} {seconds:7.1f}s {share:5.1f}%"
              f"{'' if ok else '  FAILED'}")
    print(f"\nTotal: {total:.1f}s for {len(selected)} experiment(s)")

    problems = validate_artifacts(selected)
    if problems:
        print(f"\nARTIFACT CHECK FAILED: {len(problems)} problem(s):")
        for problem in problems:
            print(f"  {problem}")
    elif any(s["module"] in selected for s in ARTIFACT_SCHEMAS.values()):
        print("\nartifact check: all required fields present")

    regressions = []
    if write and not failures:
        write_baseline(selected)
    if check and not failures:
        regressions = check_regression(selected, tolerance)
        if regressions:
            print(f"\nREGRESSION CHECK FAILED: {len(regressions)} "
                  "problem(s):")
            for regression in regressions:
                print(f"  {regression}")
        else:
            print("regression check: all tracked hot paths within "
                  "tolerance")

    if failures:
        print(f"\nFAILED: {len(failures)} of {len(selected)} experiment(s) "
              "errored:")
        for name, exc in failures:
            print(f"  {name}: {exc!r}")
    return 1 if failures or problems or regressions else 0


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("filters", nargs="*",
                        help="substring filters over module names")
    parser.add_argument("--write-baseline", action="store_true",
                        help=f"snapshot tracked hot paths to {BASELINE_FILE}")
    parser.add_argument("--check-regression", action="store_true",
                        help="exit 1 if a tracked hot path regressed past "
                             "the tolerance vs the committed baseline")
    parser.add_argument("--regression-tolerance", type=float, default=0.10,
                        help="fractional regression allowed (default 0.10; "
                             "use a loose value across machines)")
    return parser.parse_args(argv)


if __name__ == "__main__":
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    _args = _parse_args(sys.argv[1:])
    sys.exit(main(_args.filters, check=_args.check_regression,
                  write=_args.write_baseline,
                  tolerance=_args.regression_tolerance))
