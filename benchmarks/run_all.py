"""Run every benchmark's paper-style report in sequence.

Usage::

    python benchmarks/run_all.py            # everything
    python benchmarks/run_all.py fig6 tbl4  # filter by substring
    python benchmarks/run_all.py engine     # smoke run; still emits JSON

The output of a full run is what EXPERIMENTS.md records.  Any selected
module that exposes ``bench_records()`` (currently ``bench_engine``)
also contributes machine-readable records, which are written to
``BENCH_engine.json`` at the repo root together with the git revision.
"""

import importlib
import json
import os
import subprocess
import sys
import time

MODULES = [
    "bench_engine",
    "bench_service",
    "bench_faults",
    "bench_fig5_entropy_vs_words",
    "bench_fig6_probe_time",
    "bench_fig7_breakdown",
    "bench_fig8_mlp_model",
    "bench_fig9_scaling",
    "bench_fig10_bloom",
    "bench_table4_partitioning",
    "bench_table5_partition_quality",
    "bench_fig11_large_keys",
    "bench_table6_training_time",
    "bench_appendix_insert",
    "bench_appendix_chaining",
    "bench_appendix_robustness",
    "bench_appendix_dependent",
    "bench_appendix_bloom_fpr",
    "bench_appendix_threads",
    "bench_ablation_word_size",
    "bench_ablation_siphash",
    "bench_ablation_skew",
    "bench_ablation_double_hashing",
    "bench_ablation_filter_zoo",
    "bench_ablation_tags",
    "bench_ablation_reduction",
    "bench_extension_lsm",
    "bench_extension_vector_table",
    "bench_extension_ycsb",
]


def _git_rev():
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        ).stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def write_engine_report(records, path=None):
    """Persist engine benchmark records as ``BENCH_engine.json``."""
    if path is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        path = os.path.join(repo_root, "BENCH_engine.json")
    report = {
        "git_rev": _git_rev(),
        "generated_at_unix": time.time(),
        "records": records,
    }
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
    print(f"\n[wrote {len(records)} engine record(s) to {path}]")
    return path


def main(filters):
    selected = [
        name for name in MODULES
        if not filters or any(f in name for f in filters)
    ]
    overall_start = time.perf_counter()
    engine_records = []
    failures = []
    for name in selected:
        start = time.perf_counter()
        try:
            try:
                module = importlib.import_module(name)
            except ImportError:
                module = importlib.import_module(f"benchmarks.{name}")
            module.main()
            if hasattr(module, "bench_records"):
                engine_records.extend(module.bench_records())
        except Exception as exc:  # noqa: BLE001 - keep the sweep going
            failures.append((name, exc))
            print(f"\n[{name} FAILED after "
                  f"{time.perf_counter() - start:.1f}s: {exc!r}]")
            continue
        print(f"\n[{name} finished in {time.perf_counter() - start:.1f}s]")
    if engine_records:
        write_engine_report(engine_records)
    print(f"\nTotal: {time.perf_counter() - overall_start:.1f}s "
          f"for {len(selected)} experiment(s)")
    if failures:
        print(f"\nFAILED: {len(failures)} of {len(selected)} experiment(s) "
              "errored:")
        for name, exc in failures:
            print(f"  {name}: {exc!r}")
        return 1
    return 0


if __name__ == "__main__":
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    sys.exit(main(sys.argv[1:]))
