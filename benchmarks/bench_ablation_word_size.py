"""Ablation — greedy word granularity (1 vs 2 vs 4 vs 8 bytes).

The paper selects 4 or 8 bytes at a time because base hashes consume a
word per step.  This ablation quantifies the trade: smaller words find
tighter byte sets (fewer bytes read for the same entropy) but train far
slower and leave the runtime hash with more, smaller reads.
"""

from repro.bench.reporting import format_speedup_table, print_header
from repro.core.greedy import choose_bytes
from repro.core.sizing import entropy_for_probing_table
from repro.datasets import hn_urls

NUM_KEYS = 6_000
WORD_SIZES = (1, 2, 4, 8)


def run_table():
    keys = hn_urls(NUM_KEYS, seed=55)
    train, test = keys[: NUM_KEYS // 2], keys[NUM_KEYS // 2:]
    required = entropy_for_probing_table(NUM_KEYS // 2)
    rows = {}
    for word_size in WORD_SIZES:
        result = choose_bytes(train, test, word_size=word_size,
                              max_words=max(2, 16 // word_size))
        words = result.min_words_for_entropy(required)
        bytes_read = words * word_size if words else None
        rows[f"{word_size}-byte words"] = {
            "train_s": result.elapsed_seconds,
            "words_needed": float(words) if words else float("nan"),
            "bytes_read": float(bytes_read) if bytes_read else float("nan"),
            "best_entropy": max(result.entropies) if result.entropies else 0.0,
        }
    return rows


def main():
    print_header("Ablation: greedy word size on HN URLs "
                 f"(requirement: H2 > {entropy_for_probing_table(NUM_KEYS // 2):.1f})")
    rows = run_table()
    print(format_speedup_table(
        rows, ["train_s", "words_needed", "bytes_read", "best_entropy"],
        row_title="granularity", digits=2,
    ))


def test_smaller_words_slower_training():
    rows = run_table()
    assert rows["1-byte words"]["train_s"] > rows["8-byte words"]["train_s"]


def test_all_granularities_reach_requirement():
    import math

    rows = run_table()
    for name, row in rows.items():
        assert not math.isnan(row["words_needed"]), name


def test_word_size_benchmark(benchmark):
    keys = hn_urls(2_000, seed=55)
    benchmark(lambda: choose_bytes(keys, word_size=4, max_words=2))


if __name__ == "__main__":
    main()
