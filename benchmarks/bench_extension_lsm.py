"""Extension — end-to-end LSM store with Entropy-Learned filters.

Not a paper figure: this bench composes the reproduced pieces into the
paper's motivating system (an LSM key-value store, RocksDB-style) and
measures what ELH buys at the *system* level: negative-lookup latency
(the filter-bound path) with entropy-aware filters vs full-key filters,
at identical filter effectiveness.
"""

import time

from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.datasets import google_urls
from repro.kvstore.sstable import SSTable
from repro.kvstore.store import LSMStore

NUM_KEYS = 12_000
NUM_RUNS = 4
NUM_NEGATIVE_LOOKUPS = 4_000


class _FullKeyLSMStore(LSMStore):
    """Baseline: identical store, filters forced to full-key hashing."""


def _build_store(keys, full_key: bool) -> LSMStore:
    store = LSMStore(memtable_bytes=1 << 30, compaction_fanout=NUM_RUNS + 1)
    per_run = len(keys) // NUM_RUNS
    for r in range(NUM_RUNS):
        for key in keys[r * per_run:(r + 1) * per_run]:
            store.put(key, b"v")
        store.flush()
    if full_key:
        # Swap every run's filter hasher for full-key xxh3, rebuilt on
        # the same keys (identical bits budget).
        for i, run in enumerate(store.runs):
            entries = run.entries()
            # Rebuild through the public path with an empty "model"
            # whose frontier certifies nothing -> full-key hashing.
            from repro.core.greedy import GreedyResult
            from repro.core.trainer import EntropyModel

            empty = EntropyModel(
                result=GreedyResult(
                    positions=[], word_size=8, entropies=[],
                    train_collisions=[], train_size=0, eval_size=0,
                ),
                base="xxh3",
            )
            store.runs[i] = SSTable(entries, model=empty)
    return store


def run_comparison():
    keys = google_urls(NUM_KEYS + NUM_NEGATIVE_LOOKUPS, seed=43)
    stored, negatives = keys[:NUM_KEYS], keys[NUM_KEYS:]
    rows = {}
    for label, full_key in (("ELH filters", False), ("full-key filters", True)):
        store = _build_store(stored, full_key)
        words = [
            len(run.filter.hasher.partial_key.positions) if run.filter else 0
            for run in store.runs
        ]
        start = time.perf_counter()
        misses = sum(store.get(k) is None for k in negatives)
        elapsed = time.perf_counter() - start
        rows[label] = {
            "us_per_get": elapsed * 1e6 / len(negatives),
            "searches_per_get": store.stats.searches_per_get,
            "filter_words": sum(words) / max(1, len(words)),
        }
        assert misses == len(negatives)
    rows["ELH filters"]["speedup"] = (
        rows["full-key filters"]["us_per_get"] / rows["ELH filters"]["us_per_get"]
    )
    rows["full-key filters"]["speedup"] = 1.0
    return rows


def main():
    print_header(f"Extension: LSM store, {NUM_RUNS} runs x "
                 f"{NUM_KEYS // NUM_RUNS} keys, {NUM_NEGATIVE_LOOKUPS} "
                 "negative lookups")
    rows = run_comparison()
    print(format_speedup_table(
        rows, ["us_per_get", "searches_per_get", "filter_words", "speedup"],
        row_title="configuration", digits=3,
    ))
    print()
    print("Both configurations answer every lookup identically; the ELH "
          "store spends less CPU per filter probe at equal pruning power.")


def test_lsm_elh_faster_at_equal_pruning():
    rows = run_comparison()
    assert rows["ELH filters"]["speedup"] > 1.1
    # Filter effectiveness must be equivalent (searches per get ~ FPR * runs).
    a = rows["ELH filters"]["searches_per_get"]
    b = rows["full-key filters"]["searches_per_get"]
    assert abs(a - b) < 0.05


def test_lsm_get_benchmark(benchmark):
    keys = google_urls(3_000, seed=43)
    store = _build_store(keys[:2_000], full_key=False)
    negatives = keys[2_000:]
    benchmark(lambda: [store.get(k) for k in negatives[:500]])


if __name__ == "__main__":
    main()
