"""Engine benchmark — one batched pipeline pass vs the scalar loop.

Every structure now routes hashing through its
:class:`~repro.engine.HashEngine`; this benchmark quantifies what that
buys.  For each structure it times the batched path (one compiled
gather + one numpy kernel call + fused reduction) against the per-key
scalar loop over the same mixed-length keys, and reports ns/key plus
the speedup.  ``bench_records()`` returns the same numbers as JSON-able
records; ``run_all.py`` collects them into ``BENCH_engine.json``.
"""

from repro.bench.harness import (
    build_probe_mix,
    latency_summary_ns,
    time_callable,
    time_samples,
)
from repro.bench.reporting import format_speedup_table, print_header
from repro.core.trainer import train_model
from repro.datasets import hn_urls
from repro.filters.blocked import BlockedBloomFilter
from repro.partitioning.partitioner import Partitioner
from repro.tables.chaining import SeparateChainingTable
from repro.tables.probing import LinearProbingTable

NUM_KEYS = 10_000          # mixed-length HN URLs; half stored
NUM_PROBES = 5_000         # acceptance floor is 4k
REPEATS = 3
LATENCY_REPEATS = 7        # batch-call samples behind the p50/p99 fields


def _workload():
    keys = hn_urls(NUM_KEYS, seed=23)
    half = len(keys) // 2
    stored, missing = keys[:half], keys[half:]
    model = train_model(stored, seed=5)
    probes = build_probe_mix(stored, missing, hit_rate=0.5,
                             num_probes=NUM_PROBES, seed=7)
    return model, stored, probes


def _record(name, n, scalar_s, batch_samples):
    # best-of-k for throughput (interpreter noise only inflates), the
    # full sample distribution for the per-key latency percentiles.
    batch_s = min(batch_samples)
    record = {
        "benchmark": name,
        "n_keys": n,
        "batch_size": n,
        "scalar_ns_per_key": scalar_s * 1e9 / n,
        "batch_ns_per_key": batch_s * 1e9 / n,
        "keys_per_second_batched": n / batch_s if batch_s else float("inf"),
        "speedup": scalar_s / batch_s if batch_s else float("inf"),
    }
    record.update(latency_summary_ns(batch_samples, items_per_sample=n))
    return record


def bench_records():
    """Time each structure's batch path against its scalar loop."""
    model, stored, probes = _workload()
    records = []

    hasher = model.hasher_for_probing_table(len(stored))
    capacity = int(len(stored) / 0.7)

    def insert_scalar():
        fresh = LinearProbingTable(hasher, capacity=capacity)
        for key in stored:
            fresh.insert(key, None)

    def insert_batched():
        LinearProbingTable(hasher, capacity=capacity).insert_batch(stored)

    scalar_s = time_callable(insert_scalar, repeats=REPEATS)
    batch_samples = time_samples(insert_batched, repeats=LATENCY_REPEATS)
    records.append(
        _record("probing_insert", len(stored), scalar_s, batch_samples))

    table = LinearProbingTable(hasher, capacity=capacity)
    table.insert_batch(stored)
    scalar_s = time_callable(lambda: [table.get(k) for k in probes],
                             repeats=REPEATS)
    batch_samples = time_samples(lambda: table.probe_batch(probes),
                                 repeats=LATENCY_REPEATS)
    records.append(
        _record("probing_probe", len(probes), scalar_s, batch_samples))

    chaining = SeparateChainingTable(
        model.hasher_for_chaining_table(len(stored)), capacity=len(stored))
    chaining.insert_batch(stored)
    scalar_s = time_callable(lambda: [chaining.get(k) for k in probes],
                             repeats=REPEATS)
    batch_samples = time_samples(lambda: chaining.probe_batch(probes),
                                 repeats=LATENCY_REPEATS)
    records.append(
        _record("chaining_probe", len(probes), scalar_s, batch_samples))

    bloom = BlockedBloomFilter.for_items(
        model.hasher_for_bloom_filter(len(stored)), expected_items=len(stored))
    bloom.add_batch(stored)
    scalar_s = time_callable(lambda: [bloom.contains(k) for k in probes],
                             repeats=REPEATS)
    batch_samples = time_samples(lambda: bloom.contains_batch(probes),
                                 repeats=LATENCY_REPEATS)
    records.append(
        _record("bloom_contains", len(probes), scalar_s, batch_samples))

    partitioner = Partitioner(
        model.hasher_for_partitioning(len(probes), 64), num_partitions=64)
    engine = partitioner.engine
    reducer = partitioner._reducer
    scalar_s = time_callable(
        lambda: [engine.hash_one(k, reducer) for k in probes],
        repeats=REPEATS)
    batch_samples = time_samples(lambda: partitioner.assign(probes),
                                 repeats=LATENCY_REPEATS)
    records.append(
        _record("partition_assign", len(probes), scalar_s, batch_samples))
    return records


def run_table():
    return {
        r["benchmark"]: {
            "scalar_ns": r["scalar_ns_per_key"],
            "batch_ns": r["batch_ns_per_key"],
            "speedup": r["speedup"],
        }
        for r in bench_records()
    }


def main():
    print_header(f"Engine batch pipeline vs scalar loop "
                 f"({NUM_PROBES} mixed-length HN probes)")
    print(format_speedup_table(
        run_table(), ["scalar_ns", "batch_ns", "speedup"],
        row_title="operation", digits=1,
    ))


def test_batch_path_faster_than_scalar():
    # The acceptance bar: batched probe/insert on >= 4k mixed-length
    # keys measurably faster through the engine than the scalar loop.
    records = {r["benchmark"]: r for r in bench_records()}
    assert records["probing_probe"]["n_keys"] >= 4_000
    assert records["probing_probe"]["speedup"] > 1.0
    assert records["probing_insert"]["speedup"] > 1.0


def test_engine_benchmark(benchmark):
    model, stored, probes = _workload()
    table = LinearProbingTable(
        model.hasher_for_probing_table(len(stored)),
        capacity=int(len(stored) / 0.7))
    table.insert_batch(stored)
    benchmark(lambda: table.probe_batch(probes))


if __name__ == "__main__":
    main()
