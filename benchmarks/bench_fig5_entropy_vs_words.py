"""Figure 5 — entropy vs number of words hashed, per dataset.

(a) each dataset's estimated Rényi-2 entropy as 8-byte words are added
    greedily (train on one half, unbiased estimate on the other half);
(b) the entropy a linear-probing table needs at 10K / 1M / 100M items,
    i.e. where each dataset's curve crosses each requirement.
"""

import math

try:
    from benchmarks.common import DATASETS, DISPLAY, workload
except ImportError:  # direct script execution
    from common import DATASETS, DISPLAY, workload

from repro.bench.reporting import format_series, print_header
from repro.core.greedy import choose_bytes
from repro.core.sizing import entropy_for_probing_table

MAX_WORDS = 4


def entropy_series(name: str):
    """Entropy at 1..MAX_WORDS words, forcing the full curve like the
    paper's figure (selection continues past train-set convergence)."""
    from repro.core.trainer import train_model

    work = workload(name)
    model = train_model(work.stored_large, force_words=MAX_WORDS, seed=5)
    return [model.result.entropy_at(w) for w in range(1, MAX_WORDS + 1)]


def main():
    print_header("Figure 5a: estimated entropy (bits) vs words hashed")
    series = {DISPLAY[name]: entropy_series(name) for name in DATASETS}
    print(format_series("words", list(range(1, MAX_WORDS + 1)), series, digits=1))

    print_header("Figure 5b: entropy needed by a linear-probing hash table")
    for n in (10_000, 1_000_000, 100_000_000):
        print(f"{n:>12,} items -> H2 > {entropy_for_probing_table(n):.1f} bits")

    print()
    print("Words needed per dataset to support each table size:")
    for n in (10_000, 1_000_000, 100_000_000):
        required = entropy_for_probing_table(n)
        row = []
        for name in DATASETS:
            words = workload(name).model.result.min_words_for_entropy(required)
            row.append(f"{DISPLAY[name]}={words if words else 'full-key'}")
        print(f"  {n:>11,} items: " + "  ".join(row))


def test_greedy_selection_google(benchmark):
    """Benchmark the byte-selection training itself on Google-like URLs."""
    work = workload("google")
    sample = work.stored_large[:3000]
    result = benchmark(lambda: choose_bytes(sample, max_words=3))
    assert result.positions


def test_entropy_frontier_sane():
    """Figure 5a's claim: by 3 words every dataset reaches >= 14 bits
    (scaled from the paper's 18 at our smaller corpus sizes)."""
    for name in DATASETS:
        series = entropy_series(name)
        best = max(series[:3])
        assert best == math.inf or best >= 14, (name, series)


if __name__ == "__main__":
    main()
