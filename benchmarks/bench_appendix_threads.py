"""Appendix experiment 6 — scaling with the number of workers.

The paper pins threads to cores and shows both wyhash and ELH scale
linearly, keeping ELH's speedup constant.  CPython's GIL makes *thread*
scaling meaningless for pure-Python work, so this bench substitutes
process-based parallelism (documented in DESIGN.md): each worker probes
the same stored set independently and we report aggregate probes/sec.

Claims to reproduce: near-linear scaling for both configurations and a
roughly constant ELH speedup across worker counts.
"""

import multiprocessing as mp
import time

try:
    from benchmarks.common import workload
except ImportError:
    from common import workload

from repro.bench.reporting import format_series, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import train_model
from repro.datasets import google_urls

WORKER_COUNTS = (1, 2)
NUM_KEYS = 4_000
NUM_PROBES = 4_000
_WORKER_STATE = {}


def _worker_init(positions, word_size):
    """Build per-process state once (keys, tables, probe list)."""
    from repro.bench.harness import build_probe_mix
    from repro.tables.probing import LinearProbingTable

    keys = google_urls(2 * NUM_KEYS, seed=88)
    stored, missing = keys[:NUM_KEYS], keys[NUM_KEYS:]
    probes = build_probe_mix(stored, missing, 1.0, NUM_PROBES, seed=3)
    hashers = {
        "wyhash": EntropyLearnedHasher.full_key("wyhash"),
        "ELH": EntropyLearnedHasher.from_positions(positions, word_size),
    }
    for label, hasher in hashers.items():
        table = LinearProbingTable(hasher, capacity=int(NUM_KEYS / 0.7))
        for key in stored:
            table.insert(key, key)
        _WORKER_STATE[label] = (table, hasher, probes)


def _worker_probe(label):
    table, hasher, probes = _WORKER_STATE[label]
    start = time.perf_counter()
    table.probe_batch_hashed(probes, hasher.hash_batch(probes))
    return time.perf_counter() - start


def _trained_positions():
    keys = google_urls(NUM_KEYS, seed=88)
    model = train_model(keys, seed=5)
    hasher = model.hasher_for_probing_table(NUM_KEYS)
    return hasher.partial_key.positions, hasher.partial_key.word_size


def run_scaling():
    positions, word_size = _trained_positions()
    series = {"wyhash": [], "ELH": []}
    for workers in WORKER_COUNTS:
        with mp.Pool(
            workers, initializer=_worker_init, initargs=(positions, word_size)
        ) as pool:
            for label in series:
                elapsed = pool.map(_worker_probe, [label] * workers)
                total_probes = workers * NUM_PROBES
                series[label].append(total_probes / max(elapsed) / 1e6)
    return series


def main():
    print_header("Appendix Fig 7 (process-based substitute): "
                 "aggregate million probes/sec vs workers")
    series = run_scaling()
    print(format_series("workers", list(WORKER_COUNTS), series, digits=2))
    speedups = [e / w for e, w in zip(series["ELH"], series["wyhash"])]
    print()
    print("ELH speedup per worker count: "
          + "  ".join(f"{c}={s:.2f}x" for c, s in zip(WORKER_COUNTS, speedups)))


def test_scaling_is_positive():
    series = run_scaling()
    # ELH keeps its advantage on average; per-count comparisons are too
    # jittery on a 2-core shared box (workers contend with the host).
    mean_elh = sum(series["ELH"]) / len(series["ELH"])
    mean_full = sum(series["wyhash"]) / len(series["wyhash"])
    assert mean_elh > mean_full
    assert series["ELH"][-1] > series["ELH"][0] * 0.5


def test_single_worker_benchmark(benchmark):
    positions, word_size = _trained_positions()
    _worker_init(positions, word_size)
    benchmark(lambda: _worker_probe("ELH"))


if __name__ == "__main__":
    main()
