"""Table 6 — training time for the greedy byte selector.

Google-URL-like corpus, word sizes 1 / 4 / 8, comparing the naive
algorithm (keeps every item each iteration) against the optimized one
(prunes items already unique on the chosen bytes).

Claims to reproduce: (1) pruning wins by a wide margin; (2) larger word
sizes train much faster (fewer candidates, faster convergence).
The corpus is scaled down from the paper's 1.2M URLs; the *ratios* are
the reproduction target, not the absolute seconds.
"""

import time

from repro.bench.reporting import format_speedup_table, print_header
from repro.core.greedy import choose_bytes, choose_bytes_naive
from repro.datasets import google_urls

NUM_KEYS = 8_000
WORD_SIZES = (1, 4, 8)
MAX_WORDS = {1: 6, 4: 4, 8: 3}  # cap tiny-word runs so the bench stays bounded


def run_table():
    keys = google_urls(NUM_KEYS, seed=123)
    rows = {"optimized": {}, "naive": {}}
    for word_size in WORD_SIZES:
        start = time.perf_counter()
        fast = choose_bytes(keys, word_size=word_size,
                            max_words=MAX_WORDS[word_size])
        rows["optimized"][f"{word_size}B"] = time.perf_counter() - start

        start = time.perf_counter()
        naive = choose_bytes_naive(keys, word_size=word_size,
                                   max_words=MAX_WORDS[word_size])
        rows["naive"][f"{word_size}B"] = time.perf_counter() - start

        assert fast.positions == naive.positions
    return rows


def main():
    print_header(f"Table 6: greedy training time (seconds), "
                 f"{NUM_KEYS} Google-like URLs")
    rows = run_table()
    columns = [f"{w}B" for w in WORD_SIZES]
    print(format_speedup_table(rows, columns, row_title="algorithm", digits=3))
    print()
    ratio = {
        c: rows["naive"][c] / rows["optimized"][c] for c in columns
    }
    print("naive / optimized ratio: "
          + "  ".join(f"{c}={r:.1f}x" for c, r in ratio.items()))


def test_pruning_faster():
    """Pruning pays off where several iterations run (1B and 4B words);
    at 8B the selection converges immediately and the two are a wash."""
    rows = run_table()
    for column in ("1B", "4B"):
        assert rows["optimized"][column] <= rows["naive"][column] * 1.05


def test_larger_words_train_faster():
    rows = run_table()
    assert rows["optimized"]["8B"] < rows["optimized"]["1B"]


def test_training_benchmark(benchmark):
    keys = google_urls(3_000, seed=123)
    benchmark(lambda: choose_bytes(keys, word_size=8, max_words=2))


if __name__ == "__main__":
    main()
