"""Ablation — SwissTable tag bits vs plain linear probing.

The paper notes SwissTable probes an array of 8-bit tags before touching
full keys, which is why misses are cheaper than hits.  This ablation
measures exactly what the tags buy: full-key comparisons per probe with
and without the tag filter, for hits and misses, under both full-key and
Entropy-Learned hashing.

The "without tags" variant is the same table with the tag check disabled
(every occupied slot's key is compared), counted via instrumentation.
"""

try:
    from benchmarks.common import build_table, workload
except ImportError:
    from common import build_table, workload

from repro.bench.harness import build_probe_mix
from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.tables.probing import LinearProbingTable


class NoTagProbingTable(LinearProbingTable):
    """Linear probing that compares the stored key at every occupied
    slot (what SwissTable would do without its tag array)."""

    def get(self, key, default=None):
        from repro._util import as_bytes

        key = as_bytes(key)
        slot, _ = self._slot_and_tag(key)
        self.stats.probes += 1
        chain = 0
        while True:
            state = self._tags[slot]
            chain += 1
            if state == 0:  # empty
                self.stats.chain_total += chain
                return default
            if state != 1:  # not a tombstone: always compare the key
                self.stats.key_comparisons += 1
                if self._keys[slot] == key:
                    self.stats.chain_total += chain
                    return self._values[slot]
            slot = (slot + 1) & self._mask


def run_comparison():
    work = workload("hn")
    stored = work.stored_large[:4000]
    rows = {}
    for hasher_label, hasher in (
        ("full-key", EntropyLearnedHasher.full_key("wyhash")),
        ("ELH", work.model.hasher_for_probing_table(len(stored))),
    ):
        for table_label, table_cls in (
            ("tags", LinearProbingTable),
            ("no-tags", NoTagProbingTable),
        ):
            table = build_table(table_cls, hasher, stored)
            row = {}
            for hit_rate, col in ((1.0, "cmp/hit"), (0.0, "cmp/miss")):
                probes = build_probe_mix(stored, work.missing, hit_rate,
                                         3000, seed=9)
                table.stats.clear()
                for key in probes:
                    table.get(key)
                row[col] = table.stats.comparisons_per_probe
            rows[f"{hasher_label}/{table_label}"] = row
    return rows


def main():
    print_header("Ablation: tag bits vs plain probing — full-key "
                 "comparisons per probe (HN, 4K keys)")
    rows = run_comparison()
    print(format_speedup_table(rows, ["cmp/hit", "cmp/miss"],
                               row_title="config", digits=3))
    print()
    print("Tags should cut miss comparisons to ~0 (the paper's SwissTable "
          "note); ELH must not change comparison counts materially.")


def test_tags_eliminate_miss_comparisons():
    rows = run_comparison()
    assert rows["full-key/tags"]["cmp/miss"] < 0.1
    assert rows["full-key/no-tags"]["cmp/miss"] > 0.3


def test_elh_preserves_comparison_counts():
    rows = run_comparison()
    assert rows["ELH/tags"]["cmp/hit"] <= rows["full-key/tags"]["cmp/hit"] + 0.1


def test_tag_probe_benchmark(benchmark):
    work = workload("hn")
    stored = work.stored_small
    table = build_table(LinearProbingTable,
                        EntropyLearnedHasher.full_key(), stored)
    probes = build_probe_mix(stored, work.missing, 0.0, 1000, seed=9)
    benchmark(lambda: [table.get(k) for k in probes])


if __name__ == "__main__":
    main()
