"""Table 4 — partitioning speedups, three modes × {64, 1024} partitions.

CRC32 as the base hash (the paper's ClickHouse choice), Entropy-Learned
CRC32 sized for the relative-variance regime (partitions within 5% of
their mean).  Modes move from compute-bound to memory-bound: pure
hashing, positional identifiers, full data copy.

Claims to reproduce: large speedups (multi-x) for pure hashing on long
high-entropy keys, moderate for positional ids, small (~1.0-1.2x) for
the write-bound data mode; Wiki shows the least benefit.
"""

try:
    from benchmarks.common import DATASETS, DISPLAY, workload
except ImportError:
    from common import DATASETS, DISPLAY, workload

from repro.bench.harness import time_callable
from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.partitioning.partitioner import Partitioner

NUM_PARTITIONS = (64, 1024)
MODES = ("pure", "positional", "data")


def _hashers(work, n, m):
    elh = work.model.hasher_for_partitioning(n, m, mode="relative")
    elh = EntropyLearnedHasher(elh.partial_key, base="crc32")
    return {
        "crc32": EntropyLearnedHasher.full_key("crc32"),
        "ELH": elh,
    }


def run_table():
    rows = {}
    for name in DATASETS:
        work = workload(name)
        keys = work.stored_large
        row = {}
        for m in NUM_PARTITIONS:
            hashers = _hashers(work, len(keys), m)
            for mode in MODES:
                times = {}
                for label, hasher in hashers.items():
                    p = Partitioner(hasher, m)
                    times[label] = time_callable(
                        lambda p=p, mode=mode: p.partition(keys, mode=mode)
                    )
                row[f"{mode}/{m}"] = times["crc32"] / times["ELH"]
        rows[DISPLAY[name]] = row
    return rows


def main():
    print_header("Table 4: ELH partitioning speedup over full-key CRC32")
    rows = run_table()
    columns = [f"{mode}/{m}" for mode in MODES for m in NUM_PARTITIONS]
    print(format_speedup_table(rows, columns))
    print()
    print("Columns: <mode>/<#partitions>; speedup = full-key time / ELH time.")


def test_pure_hashing_speedup_shape():
    """The compute-bound column shows clear multi-x wins on long keys.

    (The paper's left-to-right decline toward the write-bound data mode
    is weaker here: Python's write loop is slow but so is full-key
    hashing, so hashing still dominates even in data mode — recorded as
    a known substrate deviation in EXPERIMENTS.md.)
    """
    rows = run_table()
    for name in ("Wp.", "Ggle"):
        assert rows[name]["pure/64"] > 1.3
        assert rows[name]["data/64"] > 1.0


def test_partition_pure_benchmark(benchmark):
    work = workload("google")
    hasher = _hashers(work, len(work.stored_large), 64)["ELH"]
    p = Partitioner(hasher, 64)
    benchmark(lambda: p.partition(work.stored_large[:5000], mode="pure"))


if __name__ == "__main__":
    main()
