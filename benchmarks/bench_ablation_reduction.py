"""Ablation — fast range reduction (multiply-shift) vs modulo.

The paper's filters use Lemire/Ross reduction-by-multiplication [68]
instead of ``hash % m``.  This ablation measures both schemes on this
substrate and checks that bucket uniformity is not harmed.

Expected *inversion* vs the paper: on native hardware the multiply trick
beats the division instruction, but numpy's ``%`` is a single fused
kernel while our 128-bit multiply needs ~8 elementwise kernels, so
modulo wins here.  The library still offers ``fast_range`` because it is
bit-exact with the scalar path and consumes the hash's high bits; the
honest cost flip is recorded in EXPERIMENTS.md.
"""

import random

import numpy as np

from repro.bench.harness import time_callable
from repro.bench.reporting import format_speedup_table, print_header
from repro.filters.reduction import fast_range_array

NUM_HASHES = 200_000
NUM_BUCKETS = 1013  # non power of two, the interesting case


def _hashes():
    rng = np.random.default_rng(3)
    return rng.integers(0, 2**64, size=NUM_HASHES, dtype=np.uint64)


def run_comparison():
    hashes = _hashes()
    rows = {
        "fast_range": {
            "ns_per_hash": time_callable(
                lambda: fast_range_array(hashes, NUM_BUCKETS), repeats=5
            ) * 1e9 / NUM_HASHES,
        },
        "modulo": {
            "ns_per_hash": time_callable(
                lambda: hashes % np.uint64(NUM_BUCKETS), repeats=5
            ) * 1e9 / NUM_HASHES,
        },
    }
    rows["fast_range"]["speedup"] = (
        rows["modulo"]["ns_per_hash"] / rows["fast_range"]["ns_per_hash"]
    )
    rows["modulo"]["speedup"] = 1.0

    for label, reducer in (
        ("fast_range", lambda h: fast_range_array(h, NUM_BUCKETS)),
        ("modulo", lambda h: (h % np.uint64(NUM_BUCKETS)).astype(np.int64)),
    ):
        counts = np.bincount(reducer(hashes), minlength=NUM_BUCKETS)
        expected = NUM_HASHES / NUM_BUCKETS
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        rows[label]["chi2"] = chi2
    return rows


def main():
    print_header(f"Ablation: fast range reduction vs modulo "
                 f"({NUM_HASHES} hashes -> {NUM_BUCKETS} buckets)")
    rows = run_comparison()
    print(format_speedup_table(rows, ["ns_per_hash", "speedup", "chi2"],
                               row_title="reduction", digits=2))
    print()
    print(f"chi2 on {NUM_BUCKETS - 1} dof: 99.9% quantile ~ "
          f"{NUM_BUCKETS - 1 + 3.1 * (2 * (NUM_BUCKETS - 1)) ** 0.5:.0f}; "
          "both schemes must fall below it.")
    print("Note: in numpy the modulo kernel wins (single fused op vs ~8 "
          "elementwise ops for the 128-bit multiply) — the reverse of the "
          "paper's native-code result; see EXPERIMENTS.md.")


def test_uniformity_preserved():
    rows = run_comparison()
    dof = NUM_BUCKETS - 1
    threshold = dof + 4 * (2 * dof) ** 0.5
    assert rows["fast_range"]["chi2"] < threshold
    assert rows["modulo"]["chi2"] < threshold


def test_reduction_benchmark(benchmark):
    hashes = _hashes()
    benchmark(lambda: fast_range_array(hashes, NUM_BUCKETS))


if __name__ == "__main__":
    main()
