"""Figure 7 — probe-time breakdown: hash computation vs table access.

In-cache (1K keys) hash-table probes, split into the vectorized hash
phase and the table-walk phase, for full-key wyhash vs Entropy-Learned
wyhash at hit rates 0 and 1.  The paper's claims to reproduce: for
missing keys the hash dominates (so ELH saves the most); for present
keys the comparison work after the hash narrows the gap.
"""

try:
    from benchmarks.common import (
        DISPLAY, build_table, hasher_configs, measure_probe_ns, workload,
    )
except ImportError:
    from common import (
        DISPLAY, build_table, hasher_configs, measure_probe_ns, workload,
    )

from repro.bench.reporting import format_speedup_table, print_header
from repro.tables.probing import LinearProbingTable

DATASETS = ("uuid", "wikipedia", "hn", "google")  # the figure's four


def run_breakdown(hit_rate: float):
    rows = {}
    for name in DATASETS:
        work = workload(name)
        stored = work.stored_small
        probes = work.probes(hit_rate, stored)
        configs = hasher_configs(work, len(stored))
        for config in ("wyhash", "ELH"):
            table = build_table(LinearProbingTable, configs[config], stored)
            hash_ns, access_ns = measure_probe_ns(table, probes)
            rows[f"{DISPLAY[name]}/{config}"] = {
                "hash": hash_ns,
                "table": access_ns,
                "total": hash_ns + access_ns,
            }
    return rows


def main():
    for hit_rate in (0.0, 1.0):
        print_header(
            f"Figure 7 (in-cache, hit rate = {int(hit_rate)}): "
            "ns/probe split into hash vs table access"
        )
        rows = run_breakdown(hit_rate)
        print(format_speedup_table(rows, ["hash", "table", "total"],
                                   row_title="dataset/config", digits=0))


def test_hash_phase_shrinks_with_elh():
    """ELH must cut the hash phase specifically, not the table phase.

    Wikipedia's many-words gap (~20x) is far above timing jitter and is
    asserted strictly; Google's smaller gap gets a noise allowance (the
    two phases are each only ~0.5us on a loaded shared box).
    """
    rows = run_breakdown(0.0)
    assert rows["Wp./ELH"]["hash"] < rows["Wp./wyhash"]["hash"] / 2
    assert rows["Ggle/ELH"]["hash"] < rows["Ggle/wyhash"]["hash"] * 1.5


def test_breakdown_benchmark(benchmark):
    work = workload("hn")
    stored = work.stored_small
    hasher = hasher_configs(work, len(stored))["ELH"]
    table = build_table(LinearProbingTable, hasher, stored)
    probes = work.probes(0.0, stored, num=2000)
    benchmark(lambda: table.probe_batch_hashed(probes, hasher.hash_batch(probes)))


if __name__ == "__main__":
    main()
