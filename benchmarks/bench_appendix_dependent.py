"""Appendix experiments 4-5 — dependent (serial) lookups.

When each lookup must finish before the next starts, the batched kernels
don't apply: both configurations run the scalar path key-by-key, exactly
like the paper's dependent-access experiment.  ELH still wins because
the scalar hash reads fewer bytes; the margin is smaller than in the
batched experiments, mirroring the paper's inter- vs intra-lookup
parallelism discussion (which the analytic model also reproduces below).
"""

try:
    from benchmarks.common import DISPLAY, build_table, workload
except ImportError:
    from common import DISPLAY, build_table, workload

from repro.bench.harness import build_probe_mix, time_callable
from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.filters.blocked import BlockedBloomFilter
from repro.simulation.cost import probe_work
from repro.simulation.pipeline import PipelineModel
from repro.tables.probing import LinearProbingTable

DATASETS = ("uuid", "wikipedia", "hn", "google")
NUM_PROBES = 1_500


def run_table_probes(hit_rate: float):
    rows = {}
    for name in DATASETS:
        work = workload(name)
        stored = work.stored_small
        probes = build_probe_mix(stored, work.missing, hit_rate, NUM_PROBES, seed=3)
        configs = {
            "wyhash": EntropyLearnedHasher.full_key("wyhash"),
            "ELH": work.model.hasher_for_probing_table(len(stored)),
        }
        row = {}
        for config, hasher in configs.items():
            table = build_table(LinearProbingTable, hasher, stored)
            seconds = time_callable(
                lambda t=table: t.probe_batch(probes), repeats=2
            )
            row[config] = seconds * 1e9 / len(probes)
        row["speedup"] = row["wyhash"] / row["ELH"]
        rows[DISPLAY[name]] = row
    return rows


def run_bloom_probes():
    rows = {}
    for name in DATASETS:
        work = workload(name)
        stored = work.stored_small
        probes = build_probe_mix(stored, work.missing, 0.5, NUM_PROBES, seed=3)
        elh = work.model.hasher_for_bloom_filter(len(stored), 0.01)
        configs = {
            "xxh3": EntropyLearnedHasher.full_key("xxh3"),
            "ELH": EntropyLearnedHasher(elh.partial_key, base="xxh3"),
        }
        row = {}
        for config, hasher in configs.items():
            f = BlockedBloomFilter.for_items(hasher, len(stored), 0.03)
            for key in stored:
                f.add(key)
            seconds = time_callable(
                lambda f=f: [f.contains(k) for k in probes], repeats=2
            )
            row[config] = seconds * 1e9 / len(probes)
        row["speedup"] = row["xxh3"] / row["ELH"]
        rows[DISPLAY[name]] = row
    return rows


def modelled_dependent_speedup():
    """The pipeline model's view: dependent speedups < independent."""
    model = PipelineModel()
    rows = {}
    for name in ("hn", "google"):
        work = workload(name)
        full = probe_work(EntropyLearnedHasher.full_key(), work.stored_large, 1.0)
        elh = probe_work(
            work.model.hasher_for_probing_table(len(work.stored_large)),
            work.stored_large, 1.0,
        )
        rows[DISPLAY[name]] = {
            "independent": model.speedup(full, elh, "memory", dependent=False),
            "dependent": model.speedup(full, elh, "memory", dependent=True),
        }
    return rows


def main():
    for hit_rate in (0.0, 1.0):
        print_header(f"Appendix Fig 4 (dependent table probes, "
                     f"hit rate = {int(hit_rate)}): scalar ns/key")
        print(format_speedup_table(run_table_probes(hit_rate),
                                   ["wyhash", "ELH", "speedup"], digits=1))

    print_header("Appendix Fig 5 (dependent Bloom probes): scalar ns/key")
    print(format_speedup_table(run_bloom_probes(),
                               ["xxh3", "ELH", "speedup"], digits=1))

    print_header("Pipeline model: dependent vs independent speedup")
    print(format_speedup_table(modelled_dependent_speedup(),
                               ["independent", "dependent"]))


def test_dependent_probes_still_speed_up():
    """Thresholds carry slack for shared-box jitter; standalone runs
    measure ~2.2x (Wp.) and ~1.6x (Ggle)."""
    rows = run_table_probes(0.0)
    assert rows["Wp."]["speedup"] > 1.2
    assert rows["Ggle"]["speedup"] > 1.0


def test_model_says_dependent_less_than_independent():
    rows = modelled_dependent_speedup()
    for name, row in rows.items():
        assert 1.0 <= row["dependent"] <= row["independent"] + 1e-9


def test_dependent_probe_benchmark(benchmark):
    work = workload("google")
    hasher = work.model.hasher_for_probing_table(1000)
    table = build_table(LinearProbingTable, hasher, work.stored_small)
    probes = build_probe_mix(work.stored_small, work.missing, 0.5, 500, seed=3)
    benchmark(lambda: table.probe_batch(probes))


if __name__ == "__main__":
    main()
