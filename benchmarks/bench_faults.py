"""Fault-tolerance benchmark — recovery latency and chaos throughput.

Drives the sharded service with the :mod:`repro.faults` plane armed and
measures what the self-healing machinery costs:

* **recovery latency** — pumps from the first fire of each fault kind
  until the service is whole again (worker restarted, queues drained,
  breakers closed), with the ack ledger checked for losses;
* **throughput under chaos** — YCSB mix A at 0% / 1% / 5% per-batch
  crash probability, showing how much of the fault-free rate survives
  journal replay and ticket reconciliation;
* **breaker timeline** — the open → half_open → closed walk of one
  corrupted shard's breaker, pump by pump.

``fault_records()`` returns JSON-able records; ``main()`` (and
``run_all.py``) writes them to ``BENCH_faults.json`` at the repo root.
"""

import json
import os
import subprocess
import time

from repro.bench.harness import latency_summary_ns
from repro.bench.reporting import print_header
from repro.core.trainer import train_model
from repro.datasets import google_urls
from repro.faults import make_plane
from repro.service import Service, ServiceClient, run_service_workload
from repro.workloads.ycsb import WorkloadGenerator

NUM_KEYS = 1_500
NUM_OPS = 3_000
SHARDS = 4
BACKEND = "chaining"
COOLDOWN = 16
PROBE = 8

RECOVERY_SPECS = (
    ("crash", "crash:worker:1:count=1"),
    ("sigkill", "sigkill:worker:1:count=1"),
    ("stall", "stall:worker:1:count=4"),
    ("drop", "drop:worker:1:count=1"),
    ("queue_loss", "queue_loss:router:1:count=4"),
    ("corrupt", "corrupt:service:1:count=1"),
)

LATENCY_SAMPLE = 150       # scalar round trips behind each p50/p99 field

CHAOS_RATES = (0.0, 0.01, 0.05)


def _build(model, keys, plane=None, execution="inline"):
    service = Service(
        num_shards=SHARDS, backend=BACKEND, model=model,
        capacity=len(keys), max_queue=256, batch_size=64,
        fault_plane=plane, cooldown_pumps=COOLDOWN, probe_pumps=PROBE,
        stall_threshold=2, execution=execution,
    )
    client = ServiceClient(service)
    return service, client


def _whole(service):
    return (service.pending == 0
            and not any(w.crashed for w in service.workers)
            and all(b.closed for b in service.breakers))


def _get_latency(client, keys, n=LATENCY_SAMPLE):
    """p50/p99 of scalar get round trips on the (possibly still-armed)
    service — for the chaos records this is latency *under* the fault
    schedule, recovery pauses included."""
    samples = []
    for key in keys[:n]:
        start = time.perf_counter()
        client.get(key)
        samples.append(time.perf_counter() - start)
    return latency_summary_ns(samples)


def _measure_recovery(model, keys, kind, spec, execution="inline"):
    """Pumps from the first fire of ``kind`` until the service is whole.

    The workload stops at the first fire (polled in small chunks) so the
    heal isn't hidden inside the remaining load; what's left is pure
    recovery work — restart + journal replay + reconciliation for the
    process faults, a full cooldown + probe walk for ``corrupt``.
    """
    service, client = _build(model, keys, execution=execution)
    client.put_many((key, b"v0") for key in keys)
    # Arm only after the preload: otherwise the fault fires (and heals)
    # inside put_many and the measurement window misses it entirely.
    plane = make_plane([spec], seed=7)
    service.arm_fault_plane(plane)
    # Watch every pump: the synchronous client heals the service inside
    # its own completion loop, so polling at op granularity would always
    # see "already recovered".
    # fire: the spec fired.  impact: the service first observed un-whole
    # (for ``corrupt`` this lags the fire — the monitor needs a few more
    # polluted-window inserts before it trips).  whole: healed again.
    marks = {"fire": None, "impact": None, "whole": None}
    original_pump = service.pump

    def watched_pump():
        served = original_pump()
        if marks["fire"] is None and plane.total_fired(kind) >= 1:
            marks["fire"] = service.pump_index
        if marks["fire"] is not None and marks["whole"] is None:
            if marks["impact"] is None:
                if not _whole(service):
                    marks["impact"] = service.pump_index
            elif _whole(service):
                marks["whole"] = service.pump_index
        return served

    service.pump = watched_pump
    # Fresh inserts first: ``corrupt`` pollutes the per-insert collision
    # signal, and an update-only mix would never feed the monitor.
    for i in range(200):
        client.put(b"fresh%04d" % i, b"v")
        if marks["whole"] is not None:
            break
    generator = WorkloadGenerator(keys, mix="A", seed=3)
    operations = list(generator.operations(NUM_OPS))
    chunk = 50
    for i in range(0, len(operations), chunk):
        if marks["whole"] is not None:
            break
        run_service_workload(client, operations[i:i + chunk])
    extra = 0
    while (marks["whole"] is None and marks["impact"] is not None
           and extra < 10 * (COOLDOWN + PROBE)):
        service.pump()
        extra += 1
    assert marks["fire"] is not None, f"{kind} spec never fired"
    if marks["impact"] is None:
        # The fault was absorbed within a single pump (e.g. queue_loss
        # reconciled and served before the watcher could see a gap).
        recovery_pumps = detection_pumps = 0
    else:
        assert marks["whole"] is not None, f"{kind} never healed"
        recovery_pumps = marks["whole"] - marks["impact"]
        detection_pumps = marks["impact"] - marks["fire"]
    supervisor = service.supervisor.stats()
    suffix = "" if execution == "inline" else f"_{execution}"
    record = {
        "benchmark": f"fault_recovery_{kind}{suffix}",
        "kind": kind,
        "spec": spec,
        "execution": execution,
        "fired": plane.total_fired(kind),
        "recovery_pumps": recovery_pumps,
        "detection_pumps": detection_pumps,
        "pump_index_at_fire": marks["fire"],
        "restarts": supervisor["restarts"],
        "reconciled_tickets": supervisor["reconciled_tickets"],
        "lost_acks": client.lost_acks,
        "whole": _whole(service),
    }
    record.update(_get_latency(client, keys))
    service.close()
    return record


def _measure_chaos_throughput(model, keys, rate):
    plane = None
    if rate > 0.0:
        specs = [f"crash:worker:{s}:count=1000000:rate={rate}"
                 for s in range(SHARDS)]
        plane = make_plane(specs, seed=11)
    service, client = _build(model, keys, plane)
    client.put_many((key, b"v0") for key in keys)
    generator = WorkloadGenerator(keys, mix="A", seed=3)
    operations = list(generator.operations(NUM_OPS))
    start = time.perf_counter()
    run_service_workload(client, operations)
    service.drain()
    elapsed = time.perf_counter() - start
    supervisor = service.supervisor.stats()
    record = {
        "benchmark": f"chaos_throughput_{rate:g}",
        "crash_rate": rate,
        "ops": NUM_OPS,
        "elapsed_s": elapsed,
        "ops_per_second": NUM_OPS / elapsed if elapsed else 0.0,
        "crashes": supervisor["crashes_seen"],
        "restarts": supervisor["restarts"],
        "reconciled_tickets": supervisor["reconciled_tickets"],
        "lost_acks": client.lost_acks,
    }
    record.update(_get_latency(client, keys))
    return record


def _measure_breaker_timeline(model, keys):
    plane = make_plane(["corrupt:service:1:count=1"], seed=5)
    service, client = _build(model, keys, plane)
    client.put_many((key, b"v0") for key in keys)
    service.drain()
    breaker = service.breakers[1]
    timeline = [{"pump": service.pump_index, "state": breaker.state}]
    for _ in range(3 * (COOLDOWN + PROBE)):
        service.pump()
        if breaker.state != timeline[-1]["state"]:
            timeline.append({"pump": service.pump_index,
                             "state": breaker.state})
        if breaker.closed and len(timeline) > 1:
            break
    record = {
        "benchmark": "breaker_timeline",
        "cooldown_pumps": COOLDOWN,
        "probe_pumps": PROBE,
        "transitions": timeline,
        "opens": breaker.opens,
        "closes": breaker.closes,
        "lost_acks": client.lost_acks,
    }
    record.update(_get_latency(client, keys))
    return record


def fault_records():
    keys = google_urls(NUM_KEYS, seed=17)
    model = train_model(keys, fixed_dataset=True)
    records = [
        _measure_recovery(model, keys, kind, spec)
        for kind, spec in RECOVERY_SPECS
    ]
    # The same SIGKILL against a process shard is a *real* kill -9 of a
    # live OS process: the supervisor must restart the child and replay
    # its journal, and the ack ledger must still balance.
    records.append(
        _measure_recovery(model, keys, "sigkill",
                          "sigkill:worker:1:count=1", execution="process")
    )
    records.extend(
        _measure_chaos_throughput(model, keys, rate) for rate in CHAOS_RATES
    )
    records.append(_measure_breaker_timeline(model, keys))
    return records


def write_report(records, path=None):
    if path is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        path = os.path.join(repo_root, "BENCH_faults.json")
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except OSError:
        rev = "unknown"
    report = {
        "git_rev": rev,
        "generated_at_unix": time.time(),
        "records": records,
    }
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
    print(f"\n[wrote {len(records)} fault record(s) to {path}]")
    return path


def main():
    print_header("Faults: recovery latency, chaos throughput, breaker "
                 f"timeline ({SHARDS} {BACKEND} shards)")
    records = fault_records()
    for r in records:
        if r["benchmark"].startswith("fault_recovery"):
            print(f"{r['kind']:>11}: fired {r['fired']}, detected in "
                  f"{r['detection_pumps']}, recovered in "
                  f"{r['recovery_pumps']} pump(s), "
                  f"{r['restarts']} restart(s), "
                  f"{r['reconciled_tickets']} ticket(s) reconciled, "
                  f"lost_acks {r['lost_acks']}")
        elif r["benchmark"].startswith("chaos_throughput"):
            print(f"crash rate {r['crash_rate']:>5.0%}: "
                  f"{r['ops_per_second']:>9.0f} ops/s "
                  f"({r['crashes']} crash(es), {r['restarts']} restart(s), "
                  f"lost_acks {r['lost_acks']})")
        else:
            walk = " -> ".join(f"{t['state']}@{t['pump']}"
                               for t in r["transitions"])
            print(f"breaker timeline (cooldown {r['cooldown_pumps']}, "
                  f"probe {r['probe_pumps']}): {walk}")
    write_report(records)


# ------------------------------------------------------------------ tests
# (exercised by `pytest benchmarks/bench_faults.py`; the tier-1 suite
# collects only tests/, so these never slow it down)


def test_every_fault_kind_recovers_with_zero_lost_acks():
    keys = google_urls(400, seed=17)
    model = train_model(keys, fixed_dataset=True)
    for kind, spec in RECOVERY_SPECS:
        record = _measure_recovery(model, keys, kind, spec)
        assert record["lost_acks"] == 0, record
        assert record["whole"], record


def test_process_sigkill_recovers_with_zero_lost_acks():
    keys = google_urls(400, seed=17)
    model = train_model(keys, fixed_dataset=True)
    record = _measure_recovery(model, keys, "sigkill",
                               "sigkill:worker:1:count=1",
                               execution="process")
    assert record["fired"] >= 1, record
    assert record["lost_acks"] == 0, record
    assert record["whole"], record


def test_chaos_throughput_survives_five_percent_crashes():
    keys = google_urls(400, seed=17)
    model = train_model(keys, fixed_dataset=True)
    record = _measure_chaos_throughput(model, keys, 0.05)
    assert record["crashes"] > 0
    assert record["lost_acks"] == 0


if __name__ == "__main__":
    main()
