"""Figure 9 — Entropy-Learned Hashing vs data size (synthetic keys).

Section 6.3's synthetic workload: 80-byte keys, random only at bytes
32-39.  (a) measured probe-time speedup of ELH over full-key wyhash at
hit rates 0 and 1 as the number of keys grows; (b) the analytic model's
memory-level parallelism for both configurations across the same sizes.

Paper claims to reproduce: ELH wins at every size; at small sizes the
computation saving dominates, at large sizes the (modelled) MLP gain
takes over; MLP is higher for ELH.
"""

try:
    from benchmarks.common import build_table, measure_probe_ns
except ImportError:
    from common import build_table, measure_probe_ns

from repro.bench.harness import build_probe_mix
from repro.bench.reporting import format_series, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import train_model
from repro.datasets import structured_keys
from repro.simulation.cost import probe_work
from repro.simulation.pipeline import PipelineModel
from repro.tables.probing import LinearProbingTable

# The paper sweeps 1K..100M; interpreted Python covers 1K..64K and the
# analytic model extends the MLP story to the full range.
SIZES = (1_000, 4_000, 16_000, 64_000)


def _hashers(model, capacity):
    return {
        "wyhash": EntropyLearnedHasher.full_key("wyhash"),
        "ELH": model.hasher_for_probing_table(capacity),
    }


def measured_speedups():
    keys = structured_keys(2 * max(SIZES), seed=77)
    model = train_model(keys[:4000], seed=3)
    series = {"hit0": [], "hit1": []}
    for n in SIZES:
        stored = keys[:n]
        missing = keys[n:2 * n]
        for hit_rate, label in ((0.0, "hit0"), (1.0, "hit1")):
            probes = build_probe_mix(stored, missing, hit_rate, 3000, seed=5)
            times = {}
            for config, hasher in _hashers(model, n).items():
                table = build_table(LinearProbingTable, hasher, stored)
                hash_ns, access_ns = measure_probe_ns(table, probes, repeats=5)
                times[config] = hash_ns + access_ns
            series[label].append(times["wyhash"] / times["ELH"])
    return series


def modelled_mlp():
    keys = structured_keys(8_000, seed=77)
    model = train_model(keys[:4000], seed=3)
    pipeline = PipelineModel()
    series = {"wyhash": [], "ELH": []}
    for n in SIZES:
        resident = "cache" if n <= 4_000 else "memory"
        for config, hasher in _hashers(model, n).items():
            work = probe_work(hasher, keys[:2000], hit_rate=1.0)
            series[config].append(
                pipeline.memory_level_parallelism(work, resident)
            )
    return series


def main():
    print_header("Figure 9a: measured ELH speedup over full-key wyhash "
                 "(synthetic 80-byte keys)")
    print(format_series("n_keys", list(SIZES), measured_speedups()))

    print_header("Figure 9b: modelled memory-level parallelism")
    print(format_series("n_keys", list(SIZES), modelled_mlp()))


def test_speedup_positive_at_all_sizes():
    """Per-cell timings on a small shared box jitter by tens of percent
    (and drift with allocator/cache state when the whole suite runs), so
    cells get a loose floor, the stable hit-rate-0 panel must favour ELH
    on average, and some panel must show the clear (>1.2x) win."""
    series = measured_speedups()
    for label, values in series.items():
        assert all(v > 0.7 for v in values), (label, values)
    hit0 = series["hit0"]
    assert sum(hit0) / len(hit0) > 1.0, hit0
    assert max(max(v) for v in series.values()) > 1.2


def test_scaling_probe_benchmark(benchmark):
    keys = structured_keys(4_000, seed=77)
    model = train_model(keys[:2000], seed=3)
    hasher = model.hasher_for_probing_table(2000)
    table = build_table(LinearProbingTable, hasher, keys[:2000])
    probes = build_probe_mix(keys[:2000], keys[2000:], 0.5, 2000, seed=5)
    benchmark(lambda: table.probe_batch_hashed(probes, hasher.hash_batch(probes)))


if __name__ == "__main__":
    main()
