"""Figure 11 — large-key (8KB) speedups.

Section 6.6: synthetic fully random keys of 8192 bytes each.  ELH's
hash time is independent of key size, so speedups become unbounded for
hash-dominated operations (misses, Bloom probes, partitioning) and stay
bounded where full keys must be compared (hits).

Configurations mirror the figure: hash-table probes at hit rate 1 and 0
(in-memory), Bloom filter probes, and partitioning.
"""

try:
    from benchmarks.common import build_table, measure_probe_ns
except ImportError:
    from common import build_table, measure_probe_ns

from repro.bench.harness import build_probe_mix, time_callable
from repro.bench.reporting import format_speedup_table, print_header
from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import train_model
from repro.datasets import large_random_keys
from repro.filters.blocked import BlockedBloomFilter
from repro.partitioning.partitioner import Partitioner
from repro.tables.probing import LinearProbingTable

NUM_KEYS = 1_200
KEY_LEN = 8_192


def _data():
    keys = large_random_keys(NUM_KEYS, seed=99, key_len=KEY_LEN)
    stored, missing = keys[: NUM_KEYS // 2], keys[NUM_KEYS // 2:]
    model = train_model(stored, seed=4)
    return stored, missing, model


def run_table():
    stored, missing, model = _data()
    rows = {}

    # Hash-table probes.
    for hit_rate, label in ((1.0, "table hit=1"), (0.0, "table hit=0")):
        probes = build_probe_mix(stored, missing, hit_rate, 1_000, seed=3)
        times = {}
        for config, hasher in (
            ("full", EntropyLearnedHasher.full_key("wyhash")),
            ("ELH", model.hasher_for_probing_table(len(stored))),
        ):
            table = build_table(LinearProbingTable, hasher, stored)
            hash_ns, access_ns = measure_probe_ns(table, probes, repeats=2)
            times[config] = hash_ns + access_ns
        rows[label] = {"full_ns": times["full"], "ELH_ns": times["ELH"],
                       "speedup": times["full"] / times["ELH"]}

    # Bloom filter probes.
    probes = build_probe_mix(stored, missing, 0.5, 1_000, seed=3)
    times = {}
    for config, base_hasher in (
        ("full", EntropyLearnedHasher.full_key("xxh3")),
        ("ELH", EntropyLearnedHasher(
            model.hasher_for_bloom_filter(len(stored), 0.01).partial_key,
            base="xxh3",
        )),
    ):
        f = BlockedBloomFilter.for_items(base_hasher, len(stored), 0.03)
        f.add_batch(stored)
        seconds = time_callable(lambda f=f: f.contains_batch(probes), repeats=2)
        times[config] = seconds * 1e9 / len(probes)
    rows["bloom filter"] = {"full_ns": times["full"], "ELH_ns": times["ELH"],
                            "speedup": times["full"] / times["ELH"]}

    # Partitioning.
    times = {}
    for config, hasher in (
        ("full", EntropyLearnedHasher.full_key("crc32")),
        ("ELH", EntropyLearnedHasher(
            model.hasher_for_partitioning(len(stored), 64).partial_key,
            base="crc32",
        )),
    ):
        p = Partitioner(hasher, 64)
        seconds = time_callable(lambda p=p: p.partition(stored, "pure"), repeats=2)
        times[config] = seconds * 1e9 / len(stored)
    rows["partitioning"] = {"full_ns": times["full"], "ELH_ns": times["ELH"],
                            "speedup": times["full"] / times["ELH"]}
    return rows


def main():
    print_header(f"Figure 11: 8KB random keys ({NUM_KEYS} keys) — "
                 "ELH speedup over optimized full-key hashing")
    rows = run_table()
    print(format_speedup_table(rows, ["full_ns", "ELH_ns", "speedup"],
                               row_title="operation", digits=1))
    print()
    print("Paper reference: hits bounded (~1.5x; full keys must still be "
          "compared), misses/Bloom/partitioning one to two orders of "
          "magnitude.")


def test_hash_bound_ops_speedup_large():
    rows = run_table()
    assert rows["bloom filter"]["speedup"] > 10
    assert rows["partitioning"]["speedup"] > 10
    assert rows["table hit=0"]["speedup"] > 5


def test_hit_speedup_bounded_but_positive():
    rows = run_table()
    assert rows["table hit=1"]["speedup"] > 1.0


def test_large_key_hash_benchmark(benchmark):
    stored, _, model = _data()
    hasher = model.hasher_for_probing_table(len(stored))
    benchmark(lambda: hasher.hash_batch(stored[:200]))


if __name__ == "__main__":
    main()
