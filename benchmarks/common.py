"""Shared workload construction for the benchmark suite.

Mirrors the paper's methodology (Section 6.1): each dataset is split in
half — one half trains the byte selector, and for "large data" runs the
first half is stored while the second half supplies missing-key probes.
"Small data" stores 1K keys.  Query keys are pre-built and shuffled at a
chosen hit rate, and every measurement is best-of-k with a warm-up pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import build_probe_mix, time_callable
from repro.core.hasher import EntropyLearnedHasher
from repro.core.trainer import EntropyModel, train_model
from repro.datasets import load_dataset

# Paper Table 3 datasets; sizes scaled so the whole suite runs in
# minutes of interpreted Python (the paper's shape, not its testbed).
DATASETS = ("uuid", "wikipedia", "wiki", "hn", "google")
LARGE_SIZES = {
    "uuid": 16_000,
    "wikipedia": 8_000,
    "wiki": 16_000,
    "hn": 20_000,
    "google": 24_000,
}
SMALL_N = 1_000
NUM_PROBES = 4_000

# Paper display names, for table rows that match the figures.
DISPLAY = {
    "uuid": "UUID",
    "wikipedia": "Wp.",
    "wiki": "Wiki",
    "hn": "Hn",
    "google": "Ggle",
}


@dataclass
class Workload:
    """A prepared dataset: trained model plus stored/missing pools."""

    name: str
    keys: List[bytes]
    model: EntropyModel
    stored_large: List[bytes]
    missing: List[bytes]

    @property
    def stored_small(self) -> List[bytes]:
        return self.stored_large[:SMALL_N]

    def probes(self, hit_rate: float, stored: Sequence[bytes],
               num: int = NUM_PROBES) -> List[bytes]:
        return build_probe_mix(stored, self.missing, hit_rate, num, seed=7)


@lru_cache(maxsize=None)
def workload(name: str, base: str = "wyhash") -> Workload:
    """Load, split and train one dataset (cached per process)."""
    keys = load_dataset(name, n=LARGE_SIZES[name], seed=13)
    half = len(keys) // 2
    stored, missing = keys[:half], keys[half:]
    model = train_model(stored, base=base, seed=5)
    return Workload(
        name=name, keys=keys, model=model,
        stored_large=stored, missing=missing,
    )


def hasher_configs(work: Workload, capacity: int,
                   base: str = "wyhash") -> Dict[str, EntropyLearnedHasher]:
    """The paper's three hash-table configurations.

    * ``GST`` — the table's stock hash (we use xxh3, standing in for
      SwissTable's default);
    * ``wyhash`` — the optimized full-key wyhash (the paper's "FK");
    * ``ELH`` — Entropy-Learned wyhash sized for ``capacity``.
    """
    return {
        "GST": EntropyLearnedHasher.full_key("xxh3"),
        "wyhash": EntropyLearnedHasher.full_key(base),
        "ELH": work.model.hasher_for_probing_table(capacity),
    }


def build_table(table_cls, hasher, stored: Sequence[bytes]):
    """Build a table of class ``table_cls`` holding ``stored``."""
    table = table_cls(hasher, capacity=max(16, int(len(stored) / 0.7)))
    for key in stored:
        table.insert(key, key)
    return table


def measure_probe_ns(table, probes: Sequence[bytes],
                     repeats: int = 3) -> Tuple[float, float]:
    """(hash ns/probe, table-access ns/probe), best-of-``repeats``.

    The two phases are timed separately — vectorized hashing first, then
    the table walk with precomputed hashes — reproducing both the total
    (Figure 6) and the breakdown (Figure 7).
    """
    hasher = table.hasher
    hash_seconds = time_callable(lambda: hasher.hash_batch(probes), repeats=repeats)
    hashes = hasher.hash_batch(probes)
    access_seconds = time_callable(
        lambda: table.probe_batch_hashed(probes, hashes), repeats=repeats
    )
    n = len(probes)
    return hash_seconds * 1e9 / n, access_seconds * 1e9 / n


def measure_insert_ns(table_cls, hasher, keys: Sequence[bytes],
                      repeats: int = 3) -> float:
    """ns per insert, building a fresh table each repetition."""
    def build():
        build_table(table_cls, hasher, keys)

    return time_callable(build, repeats=repeats) * 1e9 / len(keys)


def speedup(baseline_ns: float, candidate_ns: float) -> float:
    """Throughput ratio; >1 means the candidate is faster."""
    if candidate_ns == 0:
        return float("inf")
    return baseline_ns / candidate_ns
