"""Extension — YCSB-style workloads against the LSM store.

Runs the canonical mixes (A/B/C and a negative-read variant of C)
against two otherwise identical LSM stores: one whose run filters use
Entropy-Learned hashing, one forced to full-key hashing.  Point-read
mixes show ELH's filter savings; the negative-read mix (the LSM filter's
raison d'être) shows them at their largest.
"""

import time

from repro.bench.reporting import format_speedup_table, print_header
from repro.core.greedy import GreedyResult
from repro.core.trainer import EntropyModel
from repro.datasets import google_urls
from repro.kvstore.sstable import SSTable
from repro.kvstore.store import LSMStore
from repro.workloads.ycsb import WorkloadGenerator, run_workload

NUM_KEYS = 8_000
NUM_RUNS = 4
NUM_OPS = 6_000


def _store(keys, full_key: bool) -> LSMStore:
    store = LSMStore(memtable_bytes=1 << 30, compaction_fanout=NUM_RUNS + 1)
    per_run = len(keys) // NUM_RUNS
    for r in range(NUM_RUNS):
        for key in keys[r * per_run:(r + 1) * per_run]:
            store.put(key, b"v")
        store.flush()
    if full_key:
        empty = EntropyModel(result=GreedyResult(
            positions=[], word_size=8, entropies=[], train_collisions=[],
            train_size=0, eval_size=0,
        ), base="xxh3")
        store.runs = [SSTable(run.entries(), model=empty) for run in store.runs]
    return store


def run_comparison():
    keys = google_urls(NUM_KEYS + 4_000, seed=83)
    live, ghosts = keys[:NUM_KEYS], keys[NUM_KEYS:]
    rows = {}
    for mix, kwargs in (
        ("A", {}),
        ("B", {}),
        ("C", {}),
        ("C-neg", {"negative_fraction": 0.8, "negative_keys": ghosts}),
    ):
        mix_name = mix.split("-")[0]
        times = {}
        for label, full_key in (("ELH", False), ("full-key", True)):
            store = _store(live, full_key)
            gen = WorkloadGenerator(list(live), mix_name, seed=5, **kwargs)
            ops = list(gen.operations(NUM_OPS))
            start = time.perf_counter()
            run_workload(store, iter(ops))
            times[label] = time.perf_counter() - start
        rows[f"YCSB-{mix}"] = {
            "ELH_us": times["ELH"] * 1e6 / NUM_OPS,
            "full_us": times["full-key"] * 1e6 / NUM_OPS,
            "speedup": times["full-key"] / times["ELH"],
        }
    return rows


def main():
    print_header(f"Extension: YCSB mixes on the LSM store "
                 f"({NUM_KEYS} keys, {NUM_RUNS} runs, {NUM_OPS} ops)")
    rows = run_comparison()
    print(format_speedup_table(rows, ["ELH_us", "full_us", "speedup"],
                               row_title="workload", digits=2))
    print()
    print("C-neg = read-only with 80% reads for absent keys — the "
          "filter-bound path where ELH saves the most.")


def test_negative_heavy_mix_benefits_most():
    rows = run_comparison()
    assert rows["YCSB-C-neg"]["speedup"] > 1.1


def test_all_mixes_not_slower():
    rows = run_comparison()
    for name, row in rows.items():
        assert row["speedup"] > 0.75, (name, row)


def test_ycsb_benchmark(benchmark):
    keys = google_urls(2_000, seed=83)
    store = _store(keys, full_key=False)
    gen = WorkloadGenerator(list(keys), "C", seed=5)
    ops = list(gen.operations(500))
    benchmark(lambda: run_workload(store, iter(ops)))


if __name__ == "__main__":
    main()
